//! A two-pass reference analyzer, for testing the streaming one.
//!
//! This implementation buffers the whole event stream, finds the
//! bottleneck, and then computes every metric with batch algorithms
//! (e.g. the backward scan of [`phantom_metrics::convergence_time`]
//! instead of the streaming candidate tracker). It exists so tests can
//! assert the one-pass analyzer is *byte-identical* to an obviously
//! correct formulation on real traces — it is not exported to tools.

use crate::jsonl::{parse_event_line, parse_manifest_line};
use crate::stream::{jain_exact, AnalysisReport, AnalysisTargets, EpochRow, WindowRow};
use phantom_metrics::loghist::LogHistogram;
use phantom_metrics::manifest::ANALYSIS_SCHEMA;
use phantom_sim::probe::ProbeEvent;
use std::collections::BTreeMap;

/// Analyze a trace string in two passes. Same inputs and semantics as
/// [`crate::jsonl::analyze_trace_str`]; independent implementation.
pub fn analyze_trace_str_two_pass(
    text: &str,
    targets: AnalysisTargets,
    window_secs: f64,
) -> Result<AnalysisReport, String> {
    assert!(window_secs > 0.0);
    let mut lines = text.lines();
    let manifest = parse_manifest_line(lines.next().ok_or("empty trace")?)
        .map_err(|e| format!("line 1: {e}"))?
        .for_schema(ANALYSIS_SCHEMA);

    // Pass 1: buffer everything.
    let mut events = Vec::new();
    for (n, line) in lines.enumerate() {
        events.push(parse_event_line(line).map_err(|e| format!("line {}: {e}", n + 2))?);
    }

    let widx = |t: f64| (t / window_secs).max(0.0) as u64;
    let tail = targets.tail_from_secs;
    let nan = f64::NAN;

    // Bottleneck: most dequeues, ties to the lowest (node, port); ports
    // that only ever enqueued don't qualify, MACR-only ports do.
    let mut dequeues: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut qualifies: BTreeMap<(usize, u32), bool> = BTreeMap::new();
    for (_, node, ev) in &events {
        match *ev {
            ProbeEvent::Dequeue { port, .. } => {
                *dequeues.entry((*node, port)).or_default() += 1;
                qualifies.insert((*node, port), true);
            }
            ProbeEvent::MacrUpdate { port, .. } => {
                qualifies.entry((*node, port)).or_insert(true);
            }
            _ => {}
        }
    }
    let bkey = qualifies
        .keys()
        .map(|&k| (k, dequeues.get(&k).copied().unwrap_or(0)))
        .fold(None::<((usize, u32), u64)>, |best, (k, d)| match best {
            Some((_, bd)) if bd >= d => best,
            _ => Some((k, d)),
        })
        .map(|(k, _)| k);

    // Pass 2: batch metrics over the buffered stream.
    let mut n_events = 0u64;
    let mut drops = 0u64;
    let mut last_t = 0.0f64;
    let mut q_hist = LogHistogram::new();
    let mut macr_series: Vec<(f64, f64)> = Vec::new();
    let mut tail_sum = 0.0;
    let mut tail_n = 0u64;
    let mut tail_min = f64::INFINITY;
    let mut tail_max = f64::NEG_INFINITY;
    let mut dev_sum = 0.0;
    let mut dev_n = 0u64;
    let mut tail_dequeues = 0u64;
    let mut macr_windows: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    let mut qmax_windows: BTreeMap<u64, f64> = BTreeMap::new();
    let mut deq_windows: BTreeMap<u64, u64> = BTreeMap::new();
    // Fairness: per-window per-session (count, sum), windows keyed by
    // index but *segmented by arrival* exactly like the streaming
    // analyzer (a window only exists while rate samples land in it).
    type RateMap = BTreeMap<u32, (u64, f64)>;
    let mut jain_windows: Vec<(u64, RateMap, RateMap)> = Vec::new();

    for &(t, node, ref ev) in &events {
        n_events += 1;
        if t > last_t {
            last_t = t;
        }
        let at_bottleneck = |port: u32| bkey == Some((node, port));
        match *ev {
            ProbeEvent::Enqueue { port, qlen } | ProbeEvent::Dequeue { port, qlen }
                if at_bottleneck(port) =>
            {
                q_hist.record(u64::from(qlen));
                let e = qmax_windows.entry(widx(t)).or_insert(f64::NEG_INFINITY);
                *e = e.max(f64::from(qlen));
                if matches!(ev, ProbeEvent::Dequeue { .. }) {
                    *deq_windows.entry(widx(t)).or_default() += 1;
                    if t >= tail {
                        tail_dequeues += 1;
                    }
                }
            }
            ProbeEvent::Drop { port, qlen, .. } => {
                drops += 1;
                if at_bottleneck(port) {
                    q_hist.record(u64::from(qlen));
                    let e = qmax_windows.entry(widx(t)).or_insert(f64::NEG_INFINITY);
                    *e = e.max(f64::from(qlen));
                }
            }
            ProbeEvent::MacrUpdate {
                port, macr, dev, ..
            } if at_bottleneck(port) => {
                macr_series.push((t, macr));
                let e = macr_windows.entry(widx(t)).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += macr;
                if t >= tail {
                    tail_sum += macr;
                    tail_n += 1;
                    tail_min = tail_min.min(macr);
                    tail_max = tail_max.max(macr);
                    if dev.is_finite() {
                        dev_sum += dev;
                        dev_n += 1;
                    }
                }
            }
            ProbeEvent::RmTurnaround { vc, er, .. } => {
                let idx = widx(t);
                if jain_windows.last().map(|w| w.0) != Some(idx) {
                    jain_windows.push((idx, RateMap::new(), RateMap::new()));
                }
                let e = jain_windows
                    .last_mut()
                    .unwrap()
                    .1
                    .entry(vc)
                    .or_insert((0, 0.0));
                e.0 += 1;
                e.1 += er;
            }
            ProbeEvent::CwndChange { flow, cwnd, .. } => {
                let idx = widx(t);
                if jain_windows.last().map(|w| w.0) != Some(idx) {
                    jain_windows.push((idx, RateMap::new(), RateMap::new()));
                }
                let e = jain_windows
                    .last_mut()
                    .unwrap()
                    .2
                    .entry(flow)
                    .or_insert((0, 0.0));
                e.0 += 1;
                e.1 += cwnd;
            }
            _ => {}
        }
    }

    // Convergence: the backward scan of phantom_metrics::convergence_time
    // transplanted onto the raw (t, macr) pairs.
    let conv = match targets.macr_cps {
        Some(target) if !macr_series.is_empty() => {
            let band = targets.conv_tol * target.abs().max(f64::MIN_POSITIVE);
            let last_bad = macr_series
                .iter()
                .rposition(|&(_, v)| (v - target).abs() > band);
            match last_bad {
                None => macr_series[0].0,
                Some(i) if i + 1 < macr_series.len() => macr_series[i + 1].0,
                Some(_) => nan,
            }
        }
        _ => nan,
    };
    let macr_mean = if tail_n == 0 {
        nan
    } else {
        tail_sum / tail_n as f64
    };
    let osc = if tail_n == 0 {
        nan
    } else if tail_n == 1 {
        0.0
    } else {
        tail_max - tail_min
    };
    let dev_mean = if dev_n == 0 {
        nan
    } else {
        dev_sum / dev_n as f64
    };
    let fp_err = match (targets.macr_cps, macr_mean.is_nan()) {
        (Some(target), false) if target != 0.0 => (macr_mean - target).abs() / target.abs(),
        _ => nan,
    };
    let util = match (targets.capacity_cps, bkey) {
        (Some(c), Some(_)) if last_t > tail && c > 0.0 => {
            tail_dequeues as f64 / ((last_t - tail) * c)
        }
        _ => nan,
    };

    let jains: Vec<(u64, f64)> = jain_windows
        .iter()
        .map(|(idx, rm, cwnd)| {
            let src = if rm.is_empty() { cwnd } else { rm };
            let rates: Vec<f64> = src.values().map(|&(n, s)| s / n as f64).collect();
            (*idx, jain_exact(&rates))
        })
        .collect();
    let (jain_min, jain_mean) = {
        let tailed: Vec<f64> = jains
            .iter()
            .filter(|&&(idx, j)| idx as f64 * window_secs >= tail && !j.is_nan())
            .map(|&(_, j)| j)
            .collect();
        if tailed.is_empty() {
            (nan, nan)
        } else {
            (
                tailed.iter().copied().fold(f64::INFINITY, f64::min),
                tailed.iter().sum::<f64>() / tailed.len() as f64,
            )
        }
    };
    let (qp50, qp90, qp99, qmax) = if q_hist.is_empty() {
        (nan, nan, nan, nan)
    } else {
        (
            q_hist.quantile(0.5) as f64,
            q_hist.quantile(0.9) as f64,
            q_hist.quantile(0.99) as f64,
            q_hist.max() as f64,
        )
    };

    // Per-epoch metrics via the same backward scan, restricted to the
    // epoch's interval, with the epoch's own target; the tail is the
    // epoch's second half.
    let epochs: Vec<EpochRow> = targets
        .epochs
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let in_epoch: Vec<(f64, f64)> = macr_series
                .iter()
                .copied()
                .filter(|&(t, _)| t >= e.from_secs && t < e.to_secs)
                .collect();
            let band = targets.conv_tol * e.macr_cps.abs().max(f64::MIN_POSITIVE);
            let cand = if in_epoch.is_empty() {
                None
            } else {
                match in_epoch
                    .iter()
                    .rposition(|&(_, v)| (v - e.macr_cps).abs() > band)
                {
                    None => Some(in_epoch[0].0),
                    Some(i) if i + 1 < in_epoch.len() => Some(in_epoch[i + 1].0),
                    Some(_) => None,
                }
            };
            let tail_from = e.from_secs + 0.5 * (e.to_secs - e.from_secs);
            let (mut sum, mut n) = (0.0, 0u64);
            for &(t, v) in &in_epoch {
                if t >= tail_from {
                    sum += v;
                    n += 1;
                }
            }
            let mean = if n == 0 { nan } else { sum / n as f64 };
            EpochRow {
                index: i as u64,
                from_secs: e.from_secs,
                to_secs: e.to_secs,
                target_macr_cps: e.macr_cps,
                reconvergence_secs: cand.map_or(nan, |t| t - e.from_secs),
                fixed_point_error_rel: if mean.is_nan() || e.macr_cps == 0.0 {
                    nan
                } else {
                    (mean - e.macr_cps).abs() / e.macr_cps.abs()
                },
                macr_tail_mean_cps: mean,
            }
        })
        .collect();

    let metrics = vec![
        ("convergence_secs", conv),
        ("fixed_point_error_rel", fp_err),
        ("macr_tail_mean_cps", macr_mean),
        ("oscillation_amplitude_cps", osc),
        ("macr_mean_abs_dev_cps", dev_mean),
        ("jain_tail_min", jain_min),
        ("jain_tail_mean", jain_mean),
        ("utilization_tail", util),
        ("queue_p50_cells", qp50),
        ("queue_p90_cells", qp90),
        ("queue_p99_cells", qp99),
        ("queue_max_cells", qmax),
        ("drops_total", drops as f64),
    ];

    let mut rows: BTreeMap<u64, WindowRow> = BTreeMap::new();
    let blank = |index| WindowRow {
        index,
        macr_mean_cps: nan,
        jain: nan,
        utilization: nan,
        queue_max_cells: nan,
    };
    for (&idx, &(n, sum)) in &macr_windows {
        rows.entry(idx).or_insert_with(|| blank(idx)).macr_mean_cps = sum / n as f64;
    }
    for (&idx, &m) in &qmax_windows {
        rows.entry(idx)
            .or_insert_with(|| blank(idx))
            .queue_max_cells = m;
    }
    if let Some(c) = targets.capacity_cps {
        for (&idx, &n) in &deq_windows {
            rows.entry(idx).or_insert_with(|| blank(idx)).utilization =
                n as f64 / (window_secs * c);
        }
    }
    for &(idx, j) in &jains {
        if !j.is_nan() {
            rows.entry(idx).or_insert_with(|| blank(idx)).jain = j;
        }
    }

    Ok(AnalysisReport {
        manifest,
        window_secs,
        events: n_events,
        metrics,
        epochs,
        windows: rows.into_values().collect(),
    })
}
