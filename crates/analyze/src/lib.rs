//! # phantom-analyze — streaming analysis of `phantom-trace/1` streams
//!
//! One pass, constant memory per session/port: the analyzer folds a trace
//! (file or live probe tap) into a `phantom-analysis/1` report with the
//! paper's headline quantities — convergence time and fixed-point error
//! against `C/(1+n·u)`, sliding-window Jain fairness, MACR oscillation
//! amplitude and mean deviation, link utilization, and log-bucketed queue
//! occupancy quantiles — plus per-window rows for plotting.
//!
//! * [`stream`] — the core [`StreamingAnalyzer`], the [`AnalysisSink`]
//!   probe adapter for live taps, and the [`AnalysisReport`] JSON form.
//! * [`jsonl`] — parsing of `phantom-trace/1` lines (exact inverse of the
//!   writer), the `trace-lint` validator with its truncation distinction,
//!   and whole-file analysis entry points.
//! * [`baseline`] — committed per-scenario baselines with explicit
//!   tolerances and the `--check` regression gate over them.
//! * [`reference`] — a buffered two-pass reference implementation used by
//!   tests to prove the streaming pass byte-identical.
//!
//! The same report must come out whether the events were tapped live or
//! re-read from the written JSONL: the trace writer emits `f64`s in Rust's
//! shortest-roundtrip form, the parser recovers identical bits, and both
//! analyzer paths share one arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod jsonl;
pub mod reference;
pub mod stream;

pub use baseline::{
    check_report, default_tolerance, parse_baseline, render_baseline, Baseline, BaselineEntry,
    TolMode, BASELINE_SCHEMA,
};
pub use jsonl::{
    analyze_trace_file, analyze_trace_str, lint_trace_str, read_trace_manifest, LintError,
};
pub use stream::{
    parse_epoch_metric, AnalysisHandle, AnalysisReport, AnalysisSink, AnalysisTargets, EpochRow,
    EpochTarget, StreamingAnalyzer, WindowRow, DEFAULT_WINDOW_SECS, EPOCH_METRIC_SUFFIXES,
    METRIC_NAMES,
};
