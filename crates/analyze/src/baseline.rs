//! Committed per-scenario baselines and the regression check over them.
//!
//! A baseline file (`crates/baselines/analysis/<id>.json`) is JSONL: a
//! header line naming the scenario, then one line per gated metric with
//! its recorded value and an explicit tolerance. `repro --analyze
//! --check` recomputes the metrics and fails, naming the metric and the
//! tolerance, when any strays outside its band — the CI analysis gate.

use crate::jsonl::{parse_flat_object, Scalar};
use crate::stream::{parse_epoch_metric, AnalysisReport, METRIC_NAMES};
use phantom_metrics::json::{json_f64, json_str};
use std::fmt::Write as _;

/// Schema tag of baseline files.
pub const BASELINE_SCHEMA: &str = "phantom-analysis-baseline/1";

/// How a tolerance is interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TolMode {
    /// `|measured - value| <= tol`.
    Abs,
    /// `|measured - value| <= tol * |value|`.
    Rel,
}

impl TolMode {
    fn name(self) -> &'static str {
        match self {
            TolMode::Abs => "abs",
            TolMode::Rel => "rel",
        }
    }
}

/// One gated metric.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    /// Metric name (one of [`METRIC_NAMES`]).
    pub metric: String,
    /// Recorded value.
    pub value: f64,
    /// Allowed deviation.
    pub tol: f64,
    /// Absolute or relative tolerance.
    pub mode: TolMode,
}

impl BaselineEntry {
    /// True when `measured` is within this entry's band.
    pub fn accepts(&self, measured: f64) -> bool {
        let band = match self.mode {
            TolMode::Abs => self.tol,
            TolMode::Rel => self.tol * self.value.abs(),
        };
        (measured - self.value).abs() <= band
    }
}

/// A parsed baseline file.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Scenario id the baseline gates.
    pub scenario: String,
    /// Gated metrics.
    pub entries: Vec<BaselineEntry>,
}

/// Parse a baseline file.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty baseline file")?;
    let pairs = parse_flat_object(header).map_err(|e| format!("line 1: {e}"))?;
    match pairs.iter().find(|(k, _)| k == "schema") {
        Some((_, Scalar::Str(s))) if s == BASELINE_SCHEMA => {}
        _ => return Err(format!("line 1: missing \"schema\":\"{BASELINE_SCHEMA}\"")),
    }
    let scenario = match pairs.iter().find(|(k, _)| k == "scenario") {
        Some((_, Scalar::Str(s))) => s.clone(),
        _ => return Err("line 1: missing string field `scenario`".into()),
    };
    let mut entries = Vec::new();
    for (n, line) in lines {
        if line.is_empty() {
            continue;
        }
        let pairs = parse_flat_object(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        let field = |key: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("line {}: missing `{key}`", n + 1))
        };
        let metric = match field("metric")? {
            Scalar::Str(s) => s.clone(),
            _ => return Err(format!("line {}: `metric` must be a string", n + 1)),
        };
        if !METRIC_NAMES.contains(&metric.as_str()) && parse_epoch_metric(&metric).is_none() {
            return Err(format!("line {}: unknown metric `{metric}`", n + 1));
        }
        let num = |key: &str| match field(key)? {
            Scalar::Num(v) => Ok(*v),
            _ => Err(format!("line {}: `{key}` must be a number", n + 1)),
        };
        let mode = match field("mode")? {
            Scalar::Str(s) if s == "abs" => TolMode::Abs,
            Scalar::Str(s) if s == "rel" => TolMode::Rel,
            _ => return Err(format!("line {}: `mode` must be \"abs\" or \"rel\"", n + 1)),
        };
        let tol = num("tol")?;
        if tol < 0.0 {
            return Err(format!("line {}: `tol` must be non-negative", n + 1));
        }
        entries.push(BaselineEntry {
            metric,
            value: num("value")?,
            tol,
            mode,
        });
    }
    Ok(Baseline { scenario, entries })
}

/// Check `report` against `baseline`. Returns one message per violated
/// entry, each naming the metric and its tolerance; empty means pass.
pub fn check_report(report: &AnalysisReport, baseline: &Baseline) -> Vec<String> {
    let mut failures = Vec::new();
    for e in &baseline.entries {
        match report.metric(&e.metric) {
            None => failures.push(format!(
                "{}: metric `{}` is missing from the report (baseline {} ± {} {})",
                baseline.scenario,
                e.metric,
                json_f64(e.value),
                json_f64(e.tol),
                e.mode.name()
            )),
            Some(v) if !e.accepts(v) => failures.push(format!(
                "{}: metric `{}` = {} outside baseline {} ± {} ({})",
                baseline.scenario,
                e.metric,
                json_f64(v),
                json_f64(e.value),
                json_f64(e.tol),
                e.mode.name()
            )),
            Some(_) => {}
        }
    }
    failures
}

/// The default tolerance for a metric, used by `--write-baselines`.
/// Bands are deliberately loose enough to absorb seed-to-seed noise but
/// tight enough that a perturbed control loop (e.g. `dev_gain` changed)
/// trips at least one of them.
pub fn default_tolerance(metric: &str) -> (f64, TolMode) {
    // Epoch metrics share their whole-run namesakes' bands; the 5%
    // absolute band on `fixed_point_error_rel` is the acceptance
    // criterion for per-epoch re-convergence to `C/(1+n·u)`.
    let metric = match parse_epoch_metric(metric) {
        Some((_, "reconvergence_secs")) => "convergence_secs",
        Some((_, suffix)) => suffix,
        None => metric,
    };
    match metric {
        "convergence_secs" => (0.06, TolMode::Abs),
        "fixed_point_error_rel" => (0.05, TolMode::Abs),
        "macr_tail_mean_cps" => (0.10, TolMode::Rel),
        "oscillation_amplitude_cps" => (0.75, TolMode::Rel),
        // Tight on purpose: the deviation estimate is the most sensitive
        // fingerprint of the control loop's gains (a `dev_gain` change
        // from Jacobson's 1/4 to 1.0 moves it ~25% on fig2 while every
        // coarser metric stays put).
        "macr_mean_abs_dev_cps" => (0.20, TolMode::Rel),
        "jain_tail_min" => (0.10, TolMode::Abs),
        "jain_tail_mean" => (0.05, TolMode::Abs),
        "utilization_tail" => (0.10, TolMode::Abs),
        "queue_p50_cells" => (25.0, TolMode::Abs),
        "queue_p90_cells" => (50.0, TolMode::Abs),
        "queue_p99_cells" => (80.0, TolMode::Abs),
        "queue_max_cells" => (150.0, TolMode::Abs),
        "drops_total" => (0.0, TolMode::Abs),
        _ => (0.25, TolMode::Rel),
    }
}

/// Render a baseline file from a report with [`default_tolerance`]
/// bands. Null (unmeasurable) metrics are omitted rather than gated.
pub fn render_baseline(report: &AnalysisReport, scenario: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":{},\"scenario\":{}}}",
        json_str(BASELINE_SCHEMA),
        json_str(scenario)
    );
    let epoch_names = report
        .epochs
        .iter()
        .flat_map(|e| {
            crate::stream::EPOCH_METRIC_SUFFIXES
                .iter()
                .map(move |s| format!("epoch{}_{s}", e.index))
        })
        .collect::<Vec<_>>();
    for name in METRIC_NAMES
        .iter()
        .copied()
        .chain(epoch_names.iter().map(String::as_str))
    {
        let Some(v) = report.metric(name) else {
            continue;
        };
        let (tol, mode) = default_tolerance(name);
        let _ = writeln!(
            out,
            "{{\"metric\":{},\"value\":{},\"tol\":{},\"mode\":{}}}",
            json_str(name),
            json_f64(v),
            json_f64(tol),
            json_str(mode.name())
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{AnalysisTargets, StreamingAnalyzer};
    use phantom_metrics::manifest::{Manifest, TRACE_SCHEMA};

    fn tiny_report() -> AnalysisReport {
        let m = Manifest::new(TRACE_SCHEMA, "t", 1, "c");
        let mut a = StreamingAnalyzer::new(&m, AnalysisTargets::default(), 0.05);
        a.on_event(
            0.01,
            0,
            &phantom_sim::probe::ProbeEvent::Enqueue { port: 0, qlen: 3 },
        );
        a.finish()
    }

    #[test]
    fn baseline_round_trip_and_check() {
        let report = tiny_report();
        let text = render_baseline(&report, "t");
        let baseline = parse_baseline(&text).unwrap();
        assert_eq!(baseline.scenario, "t");
        assert!(!baseline.entries.is_empty());
        assert!(check_report(&report, &baseline).is_empty(), "self-check");
    }

    #[test]
    fn violations_name_metric_and_tolerance() {
        let report = tiny_report();
        let text = format!(
            "{{\"schema\":\"{BASELINE_SCHEMA}\",\"scenario\":\"t\"}}\n{}\n",
            "{\"metric\":\"drops_total\",\"value\":5,\"tol\":1,\"mode\":\"abs\"}"
        );
        let baseline = parse_baseline(&text).unwrap();
        let failures = check_report(&report, &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("`drops_total`"), "{}", failures[0]);
        assert!(failures[0].contains("± 1 (abs)"), "{}", failures[0]);
    }

    #[test]
    fn missing_metric_fails_the_check() {
        let report = tiny_report(); // has no MACR events
        let text = format!(
            "{{\"schema\":\"{BASELINE_SCHEMA}\",\"scenario\":\"t\"}}\n{}\n",
            "{\"metric\":\"macr_tail_mean_cps\",\"value\":100,\"tol\":0.1,\"mode\":\"rel\"}"
        );
        let failures = check_report(&report, &parse_baseline(&text).unwrap());
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn rel_and_abs_bands() {
        let e = BaselineEntry {
            metric: "macr_tail_mean_cps".into(),
            value: 100.0,
            tol: 0.1,
            mode: TolMode::Rel,
        };
        assert!(e.accepts(109.9) && !e.accepts(111.0));
        let e = BaselineEntry {
            mode: TolMode::Abs,
            ..e
        };
        assert!(e.accepts(100.05) && !e.accepts(100.2));
    }

    #[test]
    fn unknown_metric_is_rejected_at_parse() {
        let text = format!(
            "{{\"schema\":\"{BASELINE_SCHEMA}\",\"scenario\":\"t\"}}\n{}\n",
            "{\"metric\":\"bogus\",\"value\":1,\"tol\":1,\"mode\":\"abs\"}"
        );
        assert!(parse_baseline(&text).is_err());
    }
}
