//! Reading `phantom-trace/1` JSONL: a dependency-free flat-object JSON
//! parser, event decoding, structural linting, and the file-analysis
//! entry points.
//!
//! Trace lines carry only scalar values, so the parser handles exactly
//! `{"key": string|number|true|false|null, ...}` — nested containers are
//! a lint error. Numbers are decoded with `str::parse::<f64>` (shortest
//! round-trip), so a replayed trace feeds the analyzer the *same bits*
//! the live probe saw.

use crate::stream::{AnalysisReport, AnalysisTargets, StreamingAnalyzer};
use phantom_metrics::manifest::{Manifest, TRACE_SCHEMA};
use phantom_sim::probe::{DropReason, ProbeEvent};
use std::path::Path;

/// One scalar JSON value on a trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A string literal.
    Str(String),
    /// A number (JSON numbers are f64 here).
    Num(f64),
    /// `true`/`false`.
    Bool(bool),
    /// `null` (how the trace encodes NaN/infinite floats).
    Null,
}

impl Scalar {
    fn as_f64(&self) -> Option<f64> {
        match *self {
            Scalar::Num(v) => Some(v),
            Scalar::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match *self {
            Scalar::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX) => {
                Some(v as u32)
            }
            _ => None,
        }
    }
}

/// Parse one flat JSON object into (key, value) pairs in line order.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    let pairs = p.object()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(pairs)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\r' | b'\n') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", char::from(c), self.i))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Scalar)>, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == b'}' {
            self.i += 1;
            return Ok(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.scalar()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(pairs);
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape `\\{}`", char::from(other))),
                    }
                }
                _ => {
                    // Re-borrow as UTF-8: step back and take the full char.
                    self.i -= 1;
                    let s = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    self.i += ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.b.get(self.i) {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') if self.b[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Scalar::Bool(true))
            }
            Some(b'f') if self.b[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Scalar::Bool(false))
            }
            Some(b'n') if self.b[self.i..].starts_with(b"null") => {
                self.i += 4;
                Ok(Scalar::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.i;
                while self.b.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                text.parse::<f64>()
                    .map(Scalar::Num)
                    .map_err(|_| format!("bad number `{text}`"))
            }
            Some(b'{') | Some(b'[') => Err("nested containers are not valid in a trace".into()),
            _ => Err(format!("expected a value at offset {}", self.i)),
        }
    }
}

fn get<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Result<&'a str, String> {
    match get(pairs, key) {
        Some(Scalar::Str(s)) => Ok(s),
        _ => Err(format!("missing string field `{key}`")),
    }
}

fn get_f64(pairs: &[(String, Scalar)], key: &str) -> Result<f64, String> {
    get(pairs, key)
        .and_then(Scalar::as_f64)
        .ok_or_else(|| format!("missing number field `{key}`"))
}

fn get_u32(pairs: &[(String, Scalar)], key: &str) -> Result<u32, String> {
    get(pairs, key)
        .and_then(Scalar::as_u32)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

/// Parse a trace's manifest line back into a [`Manifest`]. The schema
/// field must be [`TRACE_SCHEMA`].
pub fn parse_manifest_line(line: &str) -> Result<Manifest, String> {
    let pairs = parse_flat_object(line)?;
    let schema = get_str(&pairs, "schema")?;
    if schema != TRACE_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{TRACE_SCHEMA}`"));
    }
    let seed = get_f64(&pairs, "seed")?;
    if !(seed >= 0.0 && seed.fract() == 0.0) {
        return Err("seed must be a non-negative integer".into());
    }
    Ok(Manifest {
        schema: schema.to_string(),
        scenario: get_str(&pairs, "scenario")?.to_string(),
        seed: seed as u64,
        config_hash: get_str(&pairs, "config_hash")?.to_string(),
        git_rev: get_str(&pairs, "git_rev")?.to_string(),
    })
}

/// Decode one event line to `(t_secs, node, event)`.
pub fn parse_event_line(line: &str) -> Result<(f64, usize, ProbeEvent), String> {
    let pairs = parse_flat_object(line)?;
    let t = get_f64(&pairs, "t")?;
    if !t.is_finite() || t < 0.0 {
        return Err("event time `t` must be a non-negative number".into());
    }
    let node = get_u32(&pairs, "node")? as usize;
    let kind = get_str(&pairs, "kind")?;
    let ev = match kind {
        "enqueue" => ProbeEvent::Enqueue {
            port: get_u32(&pairs, "port")?,
            qlen: get_u32(&pairs, "qlen")?,
        },
        "dequeue" => ProbeEvent::Dequeue {
            port: get_u32(&pairs, "port")?,
            qlen: get_u32(&pairs, "qlen")?,
        },
        "drop" => ProbeEvent::Drop {
            port: get_u32(&pairs, "port")?,
            qlen: get_u32(&pairs, "qlen")?,
            reason: match get_str(&pairs, "reason")? {
                "overflow" => DropReason::Overflow,
                "policy" => DropReason::Policy,
                "wire" => DropReason::Wire,
                other => return Err(format!("unknown drop reason `{other}`")),
            },
        },
        "macr" => ProbeEvent::MacrUpdate {
            port: get_u32(&pairs, "port")?,
            macr: get_f64(&pairs, "macr")?,
            delta: get_f64(&pairs, "delta")?,
            dev: get_f64(&pairs, "dev")?,
            gain: get_f64(&pairs, "gain")?,
        },
        "rm" => ProbeEvent::RmTurnaround {
            vc: get_u32(&pairs, "vc")?,
            er: get_f64(&pairs, "er")?,
            ci: match get(&pairs, "ci") {
                Some(&Scalar::Bool(b)) => b,
                _ => return Err("missing bool field `ci`".into()),
            },
        },
        "cwnd" => ProbeEvent::CwndChange {
            flow: get_u32(&pairs, "flow")?,
            cwnd: get_f64(&pairs, "cwnd")?,
            ssthresh: get_f64(&pairs, "ssthresh")?,
        },
        "session_start" => ProbeEvent::SessionStart {
            session: get_u32(&pairs, "session")?,
        },
        "session_stop" => ProbeEvent::SessionStop {
            session: get_u32(&pairs, "session")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok((t, node, ev))
}

/// How a trace fails validation. Truncation (a final line cut mid-write,
/// the signature of a crashed or still-running producer) is distinct
/// from structural invalidity so callers can exit with different codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintError {
    /// The trace is structurally invalid at `line` (1-based).
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What is wrong.
        msg: String,
    },
    /// The final line was cut mid-record (no closing `}`/newline).
    Truncated {
        /// 1-based line number of the partial record.
        line: usize,
        /// What is wrong.
        msg: String,
    },
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Invalid { line, msg } => write!(f, "line {line}: {msg}"),
            LintError::Truncated { line, msg } => {
                write!(f, "line {line}: truncated record: {msg}")
            }
        }
    }
}

/// Validate a trace: manifest first line, then fully-parsed events.
/// Returns the event count — an empty-but-valid trace (manifest line
/// only) is `Ok(0)`, not an error.
pub fn lint_trace_str(text: &str) -> Result<u64, LintError> {
    if text.is_empty() {
        return Err(LintError::Invalid {
            line: 1,
            msg: "empty file (no manifest line)".into(),
        });
    }
    let lines: Vec<&str> = text.lines().collect();
    // A producer that died mid-write leaves a final line without the
    // trailing newline `writeln!` always emits; flag it distinctly
    // unless the record still happens to be complete.
    let truncated_last = !text.ends_with('\n') && !lines.last().is_some_and(|l| l.ends_with('}'));
    let complete = if truncated_last {
        &lines[..lines.len() - 1]
    } else {
        &lines[..]
    };
    if let Some((first, rest)) = complete.split_first() {
        parse_manifest_line(first).map_err(|msg| LintError::Invalid { line: 1, msg })?;
        let mut events = 0u64;
        for (n, line) in rest.iter().enumerate() {
            parse_event_line(line).map_err(|msg| LintError::Invalid { line: n + 2, msg })?;
            events += 1;
        }
        if truncated_last {
            return Err(LintError::Truncated {
                line: lines.len(),
                msg: format!("`{}`", truncate_for_msg(lines.last().unwrap())),
            });
        }
        Ok(events)
    } else {
        // The only line in the file is itself truncated.
        Err(LintError::Truncated {
            line: 1,
            msg: format!("`{}`", truncate_for_msg(lines.first().unwrap_or(&""))),
        })
    }
}

fn truncate_for_msg(line: &str) -> &str {
    &line[..line.len().min(40)]
}

/// Analyze a whole trace string: manifest line, then one event per line.
pub fn analyze_trace_str(
    text: &str,
    targets: AnalysisTargets,
    window_secs: f64,
) -> Result<AnalysisReport, String> {
    let mut lines = text.lines();
    let first = lines.next().ok_or("empty trace")?;
    let manifest = parse_manifest_line(first).map_err(|e| format!("line 1: {e}"))?;
    let mut analyzer = StreamingAnalyzer::new(&manifest, targets, window_secs);
    for (n, line) in lines.enumerate() {
        let (t, node, ev) = parse_event_line(line).map_err(|e| format!("line {}: {e}", n + 2))?;
        analyzer.on_event(t, node, &ev);
    }
    Ok(analyzer.finish())
}

/// [`analyze_trace_str`] over a file.
pub fn analyze_trace_file(
    path: &Path,
    targets: AnalysisTargets,
    window_secs: f64,
) -> Result<AnalysisReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    analyze_trace_str(&text, targets, window_secs).map_err(|e| format!("{}: {e}", path.display()))
}

/// Read just the manifest line of a trace file.
pub fn read_trace_manifest(path: &Path) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let first = text.lines().next().ok_or("empty trace")?;
    parse_manifest_line(first).map_err(|e| format!("{}: line 1: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_sim::probe::event_to_json;
    use phantom_sim::{NodeId, SimTime};

    const MANIFEST: &str = "{\"schema\":\"phantom-trace/1\",\"scenario\":\"fig2\",\"seed\":1996,\"config_hash\":\"00ff\",\"git_rev\":\"unknown\"}";

    #[test]
    fn flat_parser_handles_scalars_and_escapes() {
        let pairs =
            parse_flat_object("{\"a\": 1.5e2, \"b\":\"x\\n\\u0041\", \"c\":true, \"d\":null}")
                .unwrap();
        assert_eq!(pairs[0], ("a".into(), Scalar::Num(150.0)));
        assert_eq!(pairs[1], ("b".into(), Scalar::Str("x\nA".into())));
        assert_eq!(pairs[2], ("c".into(), Scalar::Bool(true)));
        assert_eq!(pairs[3], ("d".into(), Scalar::Null));
        assert!(parse_flat_object("{\"a\":{}}").is_err(), "nested rejected");
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
    }

    #[test]
    fn event_lines_round_trip_exactly() {
        // Every variant: emit with the probe writer, parse back, re-emit,
        // compare bytes. This pins the f64 round-trip the live-vs-file
        // identity depends on.
        let events = [
            ProbeEvent::Enqueue { port: 1, qlen: 7 },
            ProbeEvent::Dequeue { port: 0, qlen: 0 },
            ProbeEvent::Drop {
                port: 2,
                qlen: 99,
                reason: DropReason::Wire,
            },
            ProbeEvent::MacrUpdate {
                port: 0,
                macr: 1234.567891011,
                delta: -0.125,
                dev: f64::NAN,
                gain: 0.0625,
            },
            ProbeEvent::RmTurnaround {
                vc: 3,
                er: 1.0 / 3.0,
                ci: true,
            },
            ProbeEvent::CwndChange {
                flow: 1,
                cwnd: 10.5,
                ssthresh: 8.0,
            },
            ProbeEvent::SessionStart { session: 4 },
            ProbeEvent::SessionStop { session: 4 },
        ];
        for ev in &events {
            let line = event_to_json(SimTime::from_micros(123_457), NodeId(9), ev);
            let (t, node, parsed) = parse_event_line(&line).unwrap();
            let reline = event_to_json(SimTime::from_secs_f64(t), NodeId(node), &parsed);
            assert_eq!(line, reline, "round trip must be byte-exact");
            match (ev, &parsed) {
                (ProbeEvent::MacrUpdate { dev, .. }, ProbeEvent::MacrUpdate { dev: d2, .. }) => {
                    assert!(dev.is_nan() && d2.is_nan());
                }
                _ => assert_eq!(ev, &parsed),
            }
        }
    }

    #[test]
    fn manifest_round_trip() {
        let m = parse_manifest_line(MANIFEST).unwrap();
        assert_eq!(m.scenario, "fig2");
        assert_eq!(m.seed, 1996);
        assert_eq!(m.to_json(), MANIFEST);
        assert!(parse_manifest_line("{\"schema\":\"phantom-csv/1\"}").is_err());
    }

    #[test]
    fn lint_accepts_empty_but_valid_traces() {
        assert_eq!(lint_trace_str(&format!("{MANIFEST}\n")), Ok(0));
        let one = format!(
            "{MANIFEST}\n{{\"t\":0.1,\"node\":0,\"kind\":\"session_start\",\"session\":0}}\n"
        );
        assert_eq!(lint_trace_str(&one), Ok(1));
    }

    #[test]
    fn lint_distinguishes_truncation_from_invalidity() {
        // cut mid-record: distinct Truncated error
        let cut = format!("{MANIFEST}\n{{\"t\":0.1,\"node\":0,\"kind\":\"enq");
        assert!(matches!(
            lint_trace_str(&cut),
            Err(LintError::Truncated { line: 2, .. })
        ));
        // a complete final record merely missing the newline is fine
        let no_nl = format!(
            "{MANIFEST}\n{{\"t\":0.1,\"node\":0,\"kind\":\"session_start\",\"session\":0}}"
        );
        assert_eq!(lint_trace_str(&no_nl), Ok(1));
        // garbage mid-file: Invalid, with the right line number
        let bad = format!("{MANIFEST}\nnot json\n");
        assert!(matches!(
            lint_trace_str(&bad),
            Err(LintError::Invalid { line: 2, .. })
        ));
        // truncated manifest itself
        assert!(matches!(
            lint_trace_str("{\"schema\":\"phantom-tr"),
            Err(LintError::Truncated { line: 1, .. })
        ));
        // empty file is invalid, not truncated
        assert!(matches!(
            lint_trace_str(""),
            Err(LintError::Invalid { line: 1, .. })
        ));
    }

    #[test]
    fn analyze_trace_str_counts_events() {
        let text = format!(
            "{MANIFEST}\n{}\n{}\n",
            "{\"t\":0.001,\"node\":1,\"kind\":\"enqueue\",\"port\":0,\"qlen\":1}",
            "{\"t\":0.002,\"node\":1,\"kind\":\"dequeue\",\"port\":0,\"qlen\":0}"
        );
        let r = analyze_trace_str(&text, AnalysisTargets::default(), 0.05).unwrap();
        assert_eq!(r.events, 2);
        assert_eq!(r.manifest.schema, "phantom-analysis/1");
        assert_eq!(r.manifest.scenario, "fig2");
    }
}
