//! Property-based tests of the streaming analyzer: perfectly symmetric
//! sessions must score *exactly* 1.0 on the sliding-window Jain index,
//! and the single-pass analyzer must be byte-identical to the buffered
//! two-pass reference on arbitrary trace streams.

use phantom_analyze::reference::analyze_trace_str_two_pass;
use phantom_analyze::{analyze_trace_str, AnalysisTargets, EpochTarget, StreamingAnalyzer};
use phantom_metrics::manifest::{Manifest, TRACE_SCHEMA};
use phantom_sim::probe::{event_to_json, DropReason, ProbeEvent};
use phantom_sim::time::SimTime;
use phantom_sim::NodeId;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = ProbeEvent> {
    prop_oneof![
        (0u32..3, 0u32..200).prop_map(|(port, qlen)| ProbeEvent::Enqueue { port, qlen }),
        (0u32..3, 0u32..200).prop_map(|(port, qlen)| ProbeEvent::Dequeue { port, qlen }),
        (
            0u32..3,
            0u32..200,
            prop_oneof![
                Just(DropReason::Overflow),
                Just(DropReason::Policy),
                Just(DropReason::Wire)
            ]
        )
            .prop_map(|(port, qlen, reason)| ProbeEvent::Drop { port, qlen, reason }),
        (
            0u32..3,
            1.0f64..500_000.0,
            -1e4f64..1e4,
            prop_oneof![Just(f64::NAN), 0.0f64..1e4],
            prop_oneof![Just(f64::NAN), 0.0f64..1.0]
        )
            .prop_map(|(port, macr, delta, dev, gain)| ProbeEvent::MacrUpdate {
                port,
                macr,
                delta,
                dev,
                gain
            }),
        (0u32..6, 1.0f64..500_000.0, any::<bool>())
            .prop_map(|(vc, er, ci)| ProbeEvent::RmTurnaround { vc, er, ci }),
        (0u32..6, 1.0f64..100.0, 1.0f64..100.0).prop_map(|(flow, cwnd, ssthresh)| {
            ProbeEvent::CwndChange {
                flow,
                cwnd,
                ssthresh,
            }
        }),
        (0u32..6).prop_map(|session| ProbeEvent::SessionStart { session }),
        (0u32..6).prop_map(|session| ProbeEvent::SessionStop { session }),
    ]
}

/// A random trace: a manifest line plus events at non-decreasing
/// microsecond timestamps, rendered by the real trace writer.
fn arb_trace() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u64..500_000, arb_event()), 0..120).prop_map(|mut evs| {
        evs.sort_by_key(|&(us, _)| us);
        let manifest = Manifest::new(TRACE_SCHEMA, "prop", 7, "prop");
        let mut out = manifest.to_json();
        out.push('\n');
        for (us, ev) in &evs {
            out.push_str(&event_to_json(
                SimTime::from_micros(*us),
                NodeId(usize::try_from(*us % 4).unwrap()),
                ev,
            ));
            out.push('\n');
        }
        out
    })
}

/// Ascending non-overlapping perturbation epochs inside the trace's
/// 0..0.5 s horizon, each with its own MACR target.
fn arb_epochs() -> impl Strategy<Value = Vec<EpochTarget>> {
    proptest::collection::vec((0.0f64..0.05, 0.01f64..0.15, 1e3f64..5e5), 0..4).prop_map(|spans| {
        let mut t0 = 0.0;
        spans
            .into_iter()
            .map(|(gap, len, macr_cps)| {
                let from_secs = t0 + gap;
                let to_secs = from_secs + len;
                t0 = to_secs;
                EpochTarget {
                    from_secs,
                    to_secs,
                    macr_cps,
                }
            })
            .collect()
    })
}

fn arb_targets() -> impl Strategy<Value = AnalysisTargets> {
    (
        prop_oneof![Just(None), (1e3f64..5e5).prop_map(Some)],
        prop_oneof![Just(None), (1e3f64..5e5).prop_map(Some)],
        0.01f64..0.5,
        0.0f64..0.4,
        arb_epochs(),
    )
        .prop_map(
            |(macr_cps, capacity_cps, conv_tol, tail_from_secs, epochs)| AnalysisTargets {
                macr_cps,
                capacity_cps,
                conv_tol,
                tail_from_secs,
                epochs,
            },
        )
}

proptest! {
    /// Satellite 3a: n symmetric greedy sessions — identical explicit
    /// rates in every window — score a sliding-window Jain index of
    /// exactly 1.0, bit-for-bit, in every window and in the tail
    /// aggregates.
    #[test]
    fn symmetric_sessions_jain_is_exactly_one(
        n in 2usize..24,
        rate in 1.0f64..1e6,
        rounds in 1usize..20,
        window_ms in 1u64..80,
    ) {
        let manifest = Manifest::new(TRACE_SCHEMA, "sym", 1, "sym");
        let window = window_ms as f64 / 1e3;
        let mut a = StreamingAnalyzer::new(&manifest, AnalysisTargets::default(), window);
        for round in 0..rounds {
            let t = round as f64 * 1e-3;
            for vc in 0..n {
                a.on_event(t, 0, &ProbeEvent::RmTurnaround {
                    vc: u32::try_from(vc).unwrap(),
                    er: rate,
                    ci: false,
                });
            }
        }
        let report = a.finish();
        prop_assert_eq!(report.metric("jain_tail_min"), Some(1.0));
        prop_assert_eq!(report.metric("jain_tail_mean"), Some(1.0));
        let mut windows_with_jain = 0;
        for w in &report.windows {
            if !w.jain.is_nan() {
                prop_assert_eq!(w.jain, 1.0, "window {} jain {}", w.index, w.jain);
                windows_with_jain += 1;
            }
        }
        prop_assert!(windows_with_jain > 0);
    }

    /// Satellite 3b (synthetic half): the streaming one-pass analyzer
    /// emits byte-identical `phantom-analysis/1` JSON to the buffered
    /// two-pass reference on arbitrary well-formed traces, for any
    /// targets and window width.
    #[test]
    fn streaming_matches_two_pass_reference(
        trace in arb_trace(),
        targets in arb_targets(),
        window_ms in 1u64..120,
    ) {
        let window = window_ms as f64 / 1e3;
        let one = analyze_trace_str(&trace, targets.clone(), window).unwrap();
        let two = analyze_trace_str_two_pass(&trace, targets, window).unwrap();
        prop_assert_eq!(one.to_json(), two.to_json());
    }
}
