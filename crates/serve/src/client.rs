//! A minimal client for the daemon: `phantom submit` / `phantom jobs`
//! and the integration tests speak to the server through these
//! helpers, over the same [`crate::http`] wire code the server uses.

use crate::http::{self, Response};
use phantom_scene::Json;
use std::net::TcpStream;
use std::time::Duration;

/// Normalize a `--server` value to `host:port` (an optional `http://`
/// prefix and trailing `/` are tolerated).
fn host_port(server: &str) -> &str {
    server.trim_start_matches("http://").trim_end_matches('/')
}

/// One request/response round trip (`Connection: close` per request).
pub fn request(
    server: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Response, String> {
    let addr = host_port(server);
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let body = body.unwrap_or(&[]);
    use std::io::Write as _;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .and_then(|()| stream.write_all(body))
    .map_err(|e| format!("cannot send request: {e}"))?;
    http::read_response(&mut stream).map_err(|e| format!("bad response: {e}"))
}

/// Submit a scene document; returns the raw response (202 + job record
/// on success, 400/429/503 otherwise).
pub fn submit(server: &str, scene_text: &str, seed: Option<u64>) -> Result<Response, String> {
    let path = match seed {
        Some(s) => format!("/v1/jobs?seed={s}"),
        None => "/v1/jobs".to_string(),
    };
    request(server, "POST", &path, Some(scene_text.as_bytes()))
}

/// Fetch one job record.
pub fn job_record(server: &str, id: &str) -> Result<Response, String> {
    request(server, "GET", &format!("/v1/jobs/{id}"), None)
}

/// Fetch the job listing (records + queue depth).
pub fn list(server: &str) -> Result<Response, String> {
    request(server, "GET", "/v1/jobs", None)
}

/// Request cooperative cancellation.
pub fn cancel(server: &str, id: &str) -> Result<Response, String> {
    request(server, "DELETE", &format!("/v1/jobs/{id}"), None)
}

/// Stream a job's trace to completion; blocks (server-side) until the
/// job is terminal, then returns the complete `phantom-trace/1` bytes.
pub fn fetch_trace(server: &str, id: &str) -> Result<Vec<u8>, String> {
    let resp = request(server, "GET", &format!("/v1/jobs/{id}/trace"), None)?;
    if resp.status != 200 {
        return Err(format!(
            "trace fetch failed ({}): {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim()
        ));
    }
    Ok(resp.body)
}

/// Fetch the (final or incremental) analysis report.
pub fn fetch_analysis(server: &str, id: &str) -> Result<Response, String> {
    request(server, "GET", &format!("/v1/jobs/{id}/analysis"), None)
}

/// What a [`storm`] run observed.
#[derive(Debug, Default)]
pub struct StormReport {
    /// Ids of the jobs the server admitted (in submission order).
    pub admitted: Vec<String>,
    /// Submissions the caller had to retry after a 429.
    pub retries_429: u64,
    /// 5xx responses observed anywhere in the storm.
    pub server_errors: u64,
    /// Submissions abandoned for any other reason.
    pub dropped: u64,
    /// Queue depth samples taken after the last admission, in order.
    pub depth_samples: Vec<u64>,
    /// `(id, terminal state)` for every admitted job.
    pub final_states: Vec<(String, String)>,
}

/// Submit `n` copies of `scene_text` (seeds `seed0..seed0+n`) as fast
/// as the bounded queue admits them — retrying 429s with a short
/// backoff — then poll until every admitted job reaches a terminal
/// state, sampling the queue depth on each poll.
pub fn storm(server: &str, scene_text: &str, n: usize, seed0: u64) -> Result<StormReport, String> {
    let mut report = StormReport::default();
    for k in 0..n {
        loop {
            let resp = submit(server, scene_text, Some(seed0 + k as u64))?;
            match resp.status {
                202 => {
                    let body = String::from_utf8_lossy(&resp.body);
                    let j = Json::parse(body.trim()).map_err(|e| format!("bad job record: {e}"))?;
                    let id = j
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or("job record missing id")?
                        .to_string();
                    report.admitted.push(id);
                    break;
                }
                429 => {
                    report.retries_429 += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                s if s >= 500 => {
                    report.server_errors += 1;
                    report.dropped += 1;
                    break;
                }
                _ => {
                    report.dropped += 1;
                    break;
                }
            }
        }
    }
    // Poll to completion, sampling the queue depth each round.
    loop {
        let resp = list(server)?;
        if resp.status >= 500 {
            report.server_errors += 1;
        }
        let body = String::from_utf8_lossy(&resp.body);
        let j = Json::parse(body.trim()).map_err(|e| format!("bad listing: {e}"))?;
        let depth = j.get("queue_depth").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        report.depth_samples.push(depth);
        let jobs = match j.get("jobs") {
            Some(Json::Arr(jobs)) => jobs,
            _ => return Err("listing missing jobs array".into()),
        };
        let state_of = |id: &str| {
            jobs.iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .and_then(|r| r.get("state"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        let mut all_terminal = true;
        let mut states = Vec::with_capacity(report.admitted.len());
        for id in &report.admitted {
            let state = state_of(id).unwrap_or_else(|| "missing".into());
            if !matches!(state.as_str(), "done" | "failed" | "cancelled") {
                all_terminal = false;
            }
            states.push((id.clone(), state));
        }
        if all_terminal {
            report.final_states = states;
            return Ok(report);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
