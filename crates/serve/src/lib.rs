//! # phantom-serve — phantom-as-a-service
//!
//! A dependency-free daemon turning the deterministic scene runner
//! into a long-lived service: `phantom serve --listen ADDR --workers N`
//! accepts `phantom-scene/1` documents over a hand-rolled HTTP/1.1
//! layer on [`std::net::TcpListener`], validates them with the same
//! compiler `phantom check` uses, queues them on a bounded FIFO with
//! admission control, and runs them on a worker pool that reuses the
//! engine exactly as the CLI does.
//!
//! Endpoints (see `schemas/phantom-serve-v1.md` for the wire format):
//!
//! * `POST /v1/jobs` — submit a scene (`?seed=N`); 202 + job record,
//!   400 with a `phantom-check/1` body on invalid scenes, 429 with the
//!   queue depth when the bounded queue is full, 503 while draining.
//! * `GET /v1/jobs` / `GET /v1/jobs/{id}` — records with live
//!   heartbeat fields; unknown ids get an edit-distance hint.
//! * `GET /v1/jobs/{id}/trace` — chunked live stream of the job's
//!   `phantom-trace/1` spool. **Determinism contract:** the streamed
//!   bytes equal `phantom run <scene> --seed N --trace` exactly.
//! * `GET /v1/jobs/{id}/analysis` — the final `phantom-analysis/1`
//!   report, or an incremental one computed from the spooled prefix
//!   while the job runs.
//! * `DELETE /v1/jobs/{id}` — cooperative cancel, honoured by the
//!   engine within one calendar slice ([`phantom_sim::CancelToken`]).
//! * `GET /metrics` — Prometheus text format
//!   ([`phantom_metrics::PROMETHEUS_CONTENT_TYPE`]).
//!
//! SIGTERM (or [`Server::drain`]) drains gracefully: admission stops,
//! queued and running jobs finish, the process exits 0.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod job;
pub mod run;
pub mod server;
pub mod signal;

pub use job::{Job, JobState, SERVE_SCHEMA};
pub use run::{run_job, JobOutcome};
pub use server::{serve, Server, ServerConfig};

/// Seed used when a submission does not pass `?seed=` (the same
/// default as `phantom run`).
pub const DEFAULT_SEED: u64 = 1996;
