//! SIGTERM → drain, without a libc crate.
//!
//! The container has no external crates, but `std` already links libc
//! on unix, so the one symbol needed — `signal(2)` — is declared here
//! directly. The handler does the only thing that is async-signal-safe
//! and useful: it sets an atomic flag, which the serve loop polls at
//! 50 ms cadence to initiate the graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM handler once installed.
static TERM: AtomicBool = AtomicBool::new(false);

/// Has a SIGTERM arrived since [`install_sigterm_flag`]?
pub fn sigterm_seen() -> bool {
    TERM.load(Ordering::SeqCst)
}

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Route SIGTERM to the drain flag. No-op off unix.
#[cfg(unix)]
pub fn install_sigterm_flag() {
    // SAFETY: `signal` is the POSIX libc function std already links;
    // the handler only stores to an atomic, which is async-signal-safe.
    #[allow(unsafe_code)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_term as *const () as usize);
    }
}

/// Route SIGTERM to the drain flag. No-op off unix.
#[cfg(not(unix))]
pub fn install_sigterm_flag() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_sets_the_flag() {
        assert!(!sigterm_seen());
        on_term(15);
        assert!(sigterm_seen());
    }
}
