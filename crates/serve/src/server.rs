//! The daemon: admission queue, worker pool, HTTP dispatch, metrics
//! and graceful drain.
//!
//! One [`Server`] owns a bounded FIFO admission queue and `workers`
//! OS threads that pull jobs off it in admission order. Every HTTP
//! connection is handled on its own short-lived thread (one request
//! per connection, `Connection: close`), so a long-lived trace stream
//! never blocks admission. All shared state sits behind one mutex —
//! job heartbeats update it a few times per second, which is far below
//! contention territory.
//!
//! Graceful drain (SIGTERM or [`Server::drain`]): admission flips to
//! `503`, queued and running jobs finish, workers exit, the listener
//! closes, and [`Server::wait`] returns `Ok` — the CLI then exits 0.

use crate::http::{self, Request};
use crate::job::{Job, JobState, SERVE_SCHEMA};
use crate::run::run_job;
use phantom_analyze::analyze_trace_str;
use phantom_metrics::manifest::{Manifest, METRICS_SCHEMA};
use phantom_metrics::{Registry, PROMETHEUS_CONTENT_TYPE};
use phantom_scene::{analysis_targets, check_error_json, parse_scene};
use std::collections::VecDeque;
use std::io::{Read, Seek, SeekFrom};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// JSON content type for job records and error bodies.
const JSON_TYPE: &str = "application/json";
/// Content type for streamed JSONL traces.
const NDJSON_TYPE: &str = "application/x-ndjson";
/// Poll cadence of the live trace/analysis streamers.
const STREAM_POLL: Duration = Duration::from_millis(20);

/// Configuration for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8790`. Port 0 picks a free one.
    pub listen: String,
    /// Worker threads running jobs.
    pub workers: usize,
    /// Maximum *queued* (not yet running) jobs before admission
    /// answers 429.
    pub queue_cap: usize,
    /// Spool directory for trace/analysis artifacts; a per-process
    /// temp directory when `None`.
    pub spool: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            spool: None,
        }
    }
}

/// Counters the daemon exports at `/metrics`, all monotonic except the
/// gauges sampled at scrape time.
#[derive(Default)]
struct ServerMetrics {
    http_requests: AtomicU64,
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_draining: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    /// Completed-job `(wall_secs, events)` pairs, rendered as the
    /// run-time and event-throughput histograms per scrape.
    finished_runs: Mutex<Vec<(f64, u64)>>,
}

/// Mutable server state: the job table and the admission queue of
/// indices into it.
struct State {
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    busy_workers: usize,
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    spool: PathBuf,
    state: Mutex<State>,
    work_ready: Condvar,
    /// Admission off; workers exit once the queue empties.
    draining: AtomicBool,
    /// Accept loop should stop (set after workers finish draining).
    shutdown: AtomicBool,
    metrics: ServerMetrics,
}

/// A running daemon. Obtain with [`Server::start`]; stop with
/// [`Server::drain`] + [`Server::wait`] (or a SIGTERM when the signal
/// watcher is installed, as `phantom serve` does).
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the listener, spawn the worker pool and the accept loop.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&cfg.listen)
            .map_err(|e| format!("cannot listen on {}: {e}", cfg.listen))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let spool = cfg.spool.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("phantom-serve-{}", std::process::id()))
        });
        std::fs::create_dir_all(&spool)
            .map_err(|e| format!("cannot create spool {}: {e}", spool.display()))?;
        let shared = Arc::new(Shared {
            addr,
            spool,
            state: Mutex::new(State {
                jobs: Vec::new(),
                queue: VecDeque::new(),
                busy_workers: 0,
            }),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            metrics: ServerMetrics::default(),
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phantom-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("phantom-serve-accept".into())
            .spawn(move || accept_loop(&accept_shared, listener))
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begin a graceful drain: stop admitting, let queued and running
    /// jobs finish. Non-blocking; follow with [`Server::wait`].
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake idle workers so they can observe the drain and exit.
        self.shared.work_ready.notify_all();
    }

    /// Block until a drain completes (workers idle, queue empty), then
    /// stop the accept loop and join every thread.
    pub fn wait(mut self) -> Result<(), String> {
        for w in self.workers.drain(..) {
            w.join().map_err(|_| "worker panicked".to_string())?;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(t) = self.accept_thread.take() {
            t.join().map_err(|_| "accept loop panicked".to_string())?;
        }
        Ok(())
    }

    /// Is a drain in progress (or finished)?
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

/// Run the daemon in the foreground until a drain completes. When
/// `watch_sigterm` is set, a SIGTERM initiates the drain (the
/// `phantom serve` path); [`Server::drain`] works either way.
pub fn serve(cfg: ServerConfig, watch_sigterm: bool) -> Result<(), String> {
    let server = Server::start(cfg)?;
    eprintln!(
        "phantom-serve listening on {} ({} workers, queue {})",
        server.addr(),
        server.shared.cfg.workers.max(1),
        server.shared.cfg.queue_cap
    );
    if watch_sigterm {
        crate::signal::install_sigterm_flag();
    }
    while !server.draining() {
        if watch_sigterm && crate::signal::sigterm_seen() {
            eprintln!("phantom-serve: SIGTERM — draining");
            server.drain();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    server.wait()
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        // One thread per connection; trace streams hold theirs open
        // for the lifetime of the job they follow.
        let _ = std::thread::Builder::new()
            .name("phantom-serve-conn".into())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let req = match http::read_request(&mut stream) {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(e) => {
            let body = format!(
                "{{\"error\":{}}}\n",
                phantom_metrics::json::json_str(&e.to_string())
            );
            let _ = http::respond(&mut stream, 400, JSON_TYPE, body.as_bytes());
            return;
        }
    };
    shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
    let path = req.path.clone();
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segs.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(shared, &mut stream, &req),
        ("GET", ["v1", "jobs"]) => list_jobs(shared, &mut stream),
        ("GET", ["v1", "jobs", id]) => job_record(shared, &mut stream, id),
        ("GET", ["v1", "jobs", id, "trace"]) => stream_trace(shared, &mut stream, id),
        ("GET", ["v1", "jobs", id, "analysis"]) => analysis(shared, &mut stream, id),
        ("DELETE", ["v1", "jobs", id]) => cancel_job(shared, &mut stream, id),
        ("GET", ["metrics"]) => metrics(shared, &mut stream),
        ("GET", ["healthz"]) => http::respond(&mut stream, 200, "text/plain", b"ok\n"),
        _ => {
            let body = b"{\"error\":\"no such endpoint\"}\n";
            http::respond(&mut stream, 404, JSON_TYPE, body)
        }
    };
    let _ = result; // peer hangups mid-stream are routine, not errors
}

/// `POST /v1/jobs`: validate, admit, enqueue. 400 carries the same
/// `phantom-check/1` body `phantom check --json` prints; 429 carries
/// the queue depth; 503 during drain.
fn submit(shared: &Arc<Shared>, stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    if shared.draining.load(Ordering::SeqCst) {
        shared
            .metrics
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        let body = b"{\"error\":\"draining: not admitting new jobs\"}\n";
        return http::respond(stream, 503, JSON_TYPE, body);
    }
    let seed = match req.query_param("seed") {
        Some(v) => match v.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                let body = format!("{{\"error\":\"bad seed: {v}\"}}\n");
                return http::respond(stream, 400, JSON_TYPE, body.as_bytes());
            }
        },
        None => crate::DEFAULT_SEED,
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            shared
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            let body = check_error_json("request body", "scene document is not UTF-8");
            return http::respond(stream, 400, JSON_TYPE, format!("{body}\n").as_bytes());
        }
    };
    let scene = match parse_scene(text) {
        Ok(s) => s,
        Err(e) => {
            shared
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            let body = check_error_json("request body", &e);
            return http::respond(stream, 400, JSON_TYPE, format!("{body}\n").as_bytes());
        }
    };
    let mut state = shared.state.lock().expect("state poisoned");
    if state.queue.len() >= shared.cfg.queue_cap {
        shared.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
        let body = format!(
            "{{\"error\":\"queue full\",\"queue_depth\":{},\"queue_cap\":{}}}\n",
            state.queue.len(),
            shared.cfg.queue_cap
        );
        drop(state);
        return http::respond(stream, 429, JSON_TYPE, body.as_bytes());
    }
    let idx = state.jobs.len();
    let id = format!("job-{:04}", idx + 1);
    let job = Job::new(id, scene, seed, &shared.spool);
    let record = job.record_json();
    state.jobs.push(job);
    state.queue.push_back(idx);
    drop(state);
    shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work_ready.notify_one();
    http::respond(stream, 202, JSON_TYPE, format!("{record}\n").as_bytes())
}

/// `GET /v1/jobs`: every record plus the live queue depth.
fn list_jobs(shared: &Arc<Shared>, stream: &mut TcpStream) -> std::io::Result<()> {
    let state = shared.state.lock().expect("state poisoned");
    let records: Vec<String> = state.jobs.iter().map(Job::record_json).collect();
    let body = format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"queue_depth\":{},\"draining\":{},\"jobs\":[{}]}}\n",
        state.queue.len(),
        shared.draining.load(Ordering::SeqCst),
        records.join(",")
    );
    drop(state);
    http::respond(stream, 200, JSON_TYPE, body.as_bytes())
}

/// Resolve a job id under the state lock, or answer 404 with an
/// edit-distance hint (the same `suggest_from` the scenario registry
/// uses for unknown experiment ids).
fn lookup(shared: &Shared, id: &str) -> Result<usize, String> {
    let state = shared.state.lock().expect("state poisoned");
    if let Some(i) = state.jobs.iter().position(|j| j.id == id) {
        return Ok(i);
    }
    let ids = state.jobs.iter().map(|j| j.id.clone()).collect::<Vec<_>>();
    drop(state);
    let hint = phantom_scenarios::registry::suggest_from(ids, id).map_or(String::new(), |s| {
        format!(",\"hint\":{}", phantom_metrics::json::json_str(&s))
    });
    Err(format!("{{\"error\":\"unknown job id: {id}\"{hint}}}\n"))
}

fn job_record(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    match lookup(shared, id) {
        Ok(i) => {
            let state = shared.state.lock().expect("state poisoned");
            let record = state.jobs[i].record_json();
            drop(state);
            http::respond(stream, 200, JSON_TYPE, format!("{record}\n").as_bytes())
        }
        Err(body) => http::respond(stream, 404, JSON_TYPE, body.as_bytes()),
    }
}

/// `DELETE /v1/jobs/{id}`: cooperative cancel. A queued job flips to
/// `cancelled` immediately; a running one gets its token cancelled and
/// flips when the engine observes it (within one calendar slice).
fn cancel_job(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    match lookup(shared, id) {
        Ok(i) => {
            let mut state = shared.state.lock().expect("state poisoned");
            let job = &mut state.jobs[i];
            job.cancel.cancel();
            if job.state == JobState::Queued {
                job.state = JobState::Cancelled;
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                state.queue.retain(|&q| q != i);
            }
            let record = state.jobs[i].record_json();
            drop(state);
            http::respond(stream, 200, JSON_TYPE, format!("{record}\n").as_bytes())
        }
        Err(body) => http::respond(stream, 404, JSON_TYPE, body.as_bytes()),
    }
}

/// The `(state, trace file exists)` pair the streamers poll.
fn job_state(shared: &Shared, i: usize) -> (JobState, PathBuf) {
    let state = shared.state.lock().expect("state poisoned");
    (state.jobs[i].state, state.jobs[i].trace_path.clone())
}

/// `GET /v1/jobs/{id}/trace`: chunked live tail of the spool file.
/// Bytes appear as the worker's `BufWriter` flushes; the stream ends
/// when the job is terminal and the file fully sent, at which point
/// the client holds exactly the bytes `phantom run --trace` writes.
fn stream_trace(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let i = match lookup(shared, id) {
        Ok(i) => i,
        Err(body) => return http::respond(stream, 404, JSON_TYPE, body.as_bytes()),
    };
    // Wait for the spool to exist (job may still be queued) — unless
    // the job ends without ever starting (cancelled while queued).
    let path = loop {
        let (state, path) = job_state(shared, i);
        if path.exists() {
            break path;
        }
        if state.is_terminal() {
            let body = b"{\"error\":\"job produced no trace (cancelled before start)\"}\n";
            return http::respond(stream, 404, JSON_TYPE, body);
        }
        std::thread::sleep(STREAM_POLL);
    };
    http::start_chunked(stream, 200, NDJSON_TYPE)?;
    let mut file = std::fs::File::open(&path)?;
    let mut pos = 0u64;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let (state, _) = job_state(shared, i);
        let terminal = state.is_terminal();
        loop {
            file.seek(SeekFrom::Start(pos))?;
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            pos += n as u64;
            http::write_chunk(stream, &buf[..n])?;
        }
        if terminal {
            // State flips only after the worker flushed and dropped
            // the probe, so this read-to-EOF saw every byte.
            return http::end_chunks(stream);
        }
        std::thread::sleep(STREAM_POLL);
    }
}

/// `GET /v1/jobs/{id}/analysis`: the final `phantom-analysis/1` report
/// once the job is terminal; while running, an incremental report
/// computed from the complete lines spooled so far (marked with an
/// `X-Phantom-Partial` header via the body's transport — the report
/// itself is schema-complete either way).
fn analysis(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let i = match lookup(shared, id) {
        Ok(i) => i,
        Err(body) => return http::respond(stream, 404, JSON_TYPE, body.as_bytes()),
    };
    let (state, trace_path, analysis_path, scene_targets, window) = {
        let state = shared.state.lock().expect("state poisoned");
        let j = &state.jobs[i];
        (
            j.state,
            j.trace_path.clone(),
            j.analysis_path.clone(),
            analysis_targets(&j.scene),
            phantom_analyze::DEFAULT_WINDOW_SECS,
        )
    };
    if state.is_terminal() {
        return match std::fs::read(&analysis_path) {
            Ok(body) => http::respond(stream, 200, JSON_TYPE, &body),
            Err(_) => {
                let body = b"{\"error\":\"no analysis report for this job\"}\n";
                http::respond(stream, 404, JSON_TYPE, body)
            }
        };
    }
    // Live: analyze the complete spooled lines (drop a trailing
    // partial line — the writer appends whole records but the reader
    // can race a buffered flush).
    let text = std::fs::read_to_string(&trace_path).unwrap_or_default();
    let complete = match text.rfind('\n') {
        Some(end) => &text[..=end],
        None => "",
    };
    if complete.is_empty() {
        let body = b"{\"error\":\"no trace data yet; retry shortly\"}\n";
        return http::respond(stream, 404, JSON_TYPE, body);
    }
    match analyze_trace_str(complete, scene_targets, window) {
        Ok(report) => http::respond(stream, 200, JSON_TYPE, report.to_json().as_bytes()),
        Err(e) => {
            let body = format!(
                "{{\"error\":{}}}\n",
                phantom_metrics::json::json_str(&format!("partial analysis failed: {e}"))
            );
            http::respond(stream, 500, JSON_TYPE, body.as_bytes())
        }
    }
}

/// `GET /metrics`: the standard registry renderer over the daemon's
/// counters and gauges, served with the Prometheus text content-type.
fn metrics(shared: &Arc<Shared>, stream: &mut TcpStream) -> std::io::Result<()> {
    let m = &shared.metrics;
    let (queue_depth, busy, jobs_total) = {
        let state = shared.state.lock().expect("state poisoned");
        (state.queue.len(), state.busy_workers, state.jobs.len())
    };
    let reg = Registry::new();
    reg.set_help("phantom_serve_http_requests_total", "HTTP requests handled");
    reg.counter("phantom_serve_http_requests_total", &[])
        .add(m.http_requests.load(Ordering::Relaxed));
    reg.set_help(
        "phantom_serve_jobs_submitted_total",
        "jobs admitted to the queue",
    );
    reg.counter("phantom_serve_jobs_submitted_total", &[])
        .add(m.submitted.load(Ordering::Relaxed));
    reg.set_help(
        "phantom_serve_jobs_rejected_total",
        "jobs rejected at admission, by reason",
    );
    for (reason, v) in [
        ("queue_full", &m.rejected_full),
        ("invalid", &m.rejected_invalid),
        ("draining", &m.rejected_draining),
    ] {
        reg.counter("phantom_serve_jobs_rejected_total", &[("reason", reason)])
            .add(v.load(Ordering::Relaxed));
    }
    reg.set_help(
        "phantom_serve_jobs_completed_total",
        "jobs finished, by terminal state",
    );
    for (state, v) in [
        ("done", &m.done),
        ("failed", &m.failed),
        ("cancelled", &m.cancelled),
    ] {
        reg.counter("phantom_serve_jobs_completed_total", &[("state", state)])
            .add(v.load(Ordering::Relaxed));
    }
    reg.set_help("phantom_serve_queue_depth", "jobs waiting for a worker");
    reg.gauge("phantom_serve_queue_depth", &[])
        .set(phantom_sim::SimTime::ZERO, queue_depth as f64);
    reg.set_help(
        "phantom_serve_workers_busy",
        "workers currently running a job",
    );
    reg.gauge("phantom_serve_workers_busy", &[])
        .set(phantom_sim::SimTime::ZERO, busy as f64);
    reg.set_help("phantom_serve_jobs_known", "jobs in the table, any state");
    reg.gauge("phantom_serve_jobs_known", &[])
        .set(phantom_sim::SimTime::ZERO, jobs_total as f64);
    reg.set_help(
        "phantom_serve_job_run_seconds",
        "wall-clock run time of finished jobs",
    );
    reg.set_help(
        "phantom_serve_job_events_per_sec",
        "per-job engine event throughput (events per wall-clock second)",
    );
    let run_hist = reg.histogram("phantom_serve_job_run_seconds", &[], 0.5, 40);
    // Wide decades: debug builds run ~100k ev/s, release tens of millions.
    let rate_hist = reg.histogram("phantom_serve_job_events_per_sec", &[], 1e6, 40);
    for (wall, events) in m.finished_runs.lock().expect("metrics poisoned").iter() {
        run_hist.record(*wall);
        if *wall > 0.0 {
            rate_hist.record(*events as f64 / wall);
        }
    }
    let manifest = Manifest::new(
        METRICS_SCHEMA,
        "phantom-serve",
        0,
        &format!(
            "workers={} queue_cap={}",
            shared.cfg.workers, shared.cfg.queue_cap
        ),
    );
    let body = reg.to_prometheus(&manifest);
    http::respond(stream, 200, PROMETHEUS_CONTENT_TYPE, body.as_bytes())
}

/// One worker: pull the next queued job, run it, record the outcome.
/// Exits when draining and the queue is empty.
fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    loop {
        let idx = {
            let mut state = shared.state.lock().expect("state poisoned");
            loop {
                if let Some(i) = state.queue.pop_front() {
                    break Some(i);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("state poisoned")
                    .0;
            }
        };
        let Some(idx) = idx else { return };
        let (scene, seed, cancel, trace_path, analysis_path) = {
            let mut state = shared.state.lock().expect("state poisoned");
            let job = &mut state.jobs[idx];
            if job.state != JobState::Queued {
                continue; // cancelled while queued, raced the dequeue
            }
            job.state = JobState::Running;
            job.worker = Some(worker);
            state.busy_workers += 1;
            let job = &state.jobs[idx];
            (
                job.scene.clone(),
                job.seed,
                job.cancel.clone(),
                job.trace_path.clone(),
                job.analysis_path.clone(),
            )
        };
        let mut beat = |events: u64, sim_secs: f64| {
            let mut state = shared.state.lock().expect("state poisoned");
            state.jobs[idx].events = events;
            state.jobs[idx].sim_secs = sim_secs;
        };
        let outcome = run_job(&scene, seed, &trace_path, &analysis_path, cancel, &mut beat);
        let mut state = shared.state.lock().expect("state poisoned");
        state.busy_workers -= 1;
        let job = &mut state.jobs[idx];
        job.worker = None;
        match outcome {
            Ok(o) => {
                job.events = o.events;
                job.wall_secs = Some(o.wall_secs);
                job.state = if o.cancelled {
                    JobState::Cancelled
                } else {
                    job.sim_secs = job.sim_end_secs;
                    JobState::Done
                };
                let counter = if o.cancelled {
                    &shared.metrics.cancelled
                } else {
                    &shared.metrics.done
                };
                counter.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .finished_runs
                    .lock()
                    .expect("metrics poisoned")
                    .push((o.wall_secs, o.events));
            }
            Err(e) => {
                job.state = JobState::Failed;
                job.error = Some(e);
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
