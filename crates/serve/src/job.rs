//! Job records and the `phantom-serve/1` JSON envelope.

use phantom_metrics::manifest::{Manifest, TRACE_SCHEMA};
use phantom_scene::{Json, Scene};
use phantom_sim::CancelToken;
use std::path::PathBuf;

/// Schema tag on every job record the daemon returns.
pub const SERVE_SCHEMA: &str = "phantom-serve/1";

/// The job state machine: `queued → running → done | failed |
/// cancelled`. A queued job cancelled before a worker picks it up goes
/// straight to `cancelled`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is driving the engine.
    Running,
    /// Finished normally; trace and analysis artifacts are complete.
    Done,
    /// Setup failed (e.g. the spool file could not be created).
    Failed,
    /// Cooperatively cancelled; the trace is truncated but lintable.
    Cancelled,
}

impl JobState {
    /// The wire name of this state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True for `done`/`failed`/`cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One admitted job, as the server's job table holds it.
pub struct Job {
    /// `job-0001`-style id (1-based admission order).
    pub id: String,
    /// The validated scene (kept for the worker to compile).
    pub scene: Scene,
    /// Seed the run uses.
    pub seed: u64,
    /// Current state.
    pub state: JobState,
    /// The run's provenance manifest (trace-schema flavor); its
    /// `config_hash` is the fnv1a fingerprint clients key caches on.
    pub manifest: Manifest,
    /// Failure detail when `state == Failed`.
    pub error: Option<String>,
    /// Cancel token shared with the engine thread.
    pub cancel: CancelToken,
    /// Spool file receiving the run's `phantom-trace/1` stream.
    pub trace_path: PathBuf,
    /// Final `phantom-analysis/1` report (written when the run ends).
    pub analysis_path: PathBuf,
    /// Index of the worker running the job, while running.
    pub worker: Option<usize>,
    /// Heartbeat: events dispatched so far (updated per drive slice).
    pub events: u64,
    /// Heartbeat: simulated seconds reached so far.
    pub sim_secs: f64,
    /// The run's simulated horizon, seconds.
    pub sim_end_secs: f64,
    /// Wall-clock seconds the run took (set when terminal).
    pub wall_secs: Option<f64>,
}

impl Job {
    /// A freshly admitted job.
    pub fn new(id: String, scene: Scene, seed: u64, spool: &std::path::Path) -> Job {
        let manifest = Manifest::new(TRACE_SCHEMA, &scene.id, seed, &scene.id);
        let sim_end_secs = scene.duration_ms / 1e3;
        let trace_path = spool.join(format!("{id}.trace.jsonl"));
        let analysis_path = spool.join(format!("{id}.analysis.json"));
        Job {
            id,
            scene,
            seed,
            state: JobState::Queued,
            manifest,
            error: None,
            cancel: CancelToken::new(),
            trace_path,
            analysis_path,
            worker: None,
            events: 0,
            sim_secs: 0.0,
            sim_end_secs,
            wall_secs: None,
        }
    }

    /// The `phantom-serve/1` record clients see, as a one-line JSON
    /// document.
    pub fn record_json(&self) -> String {
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        let manifest = Json::Obj(vec![
            ("schema".into(), Json::Str(self.manifest.schema.clone())),
            ("scenario".into(), Json::Str(self.manifest.scenario.clone())),
            ("seed".into(), Json::Num(self.manifest.seed as f64)),
            (
                "config_hash".into(),
                Json::Str(self.manifest.config_hash.clone()),
            ),
            ("git_rev".into(), Json::Str(self.manifest.git_rev.clone())),
        ]);
        let progress = if self.state.is_terminal() && self.state == JobState::Done {
            1.0
        } else if self.sim_end_secs > 0.0 {
            (self.sim_secs / self.sim_end_secs).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Json::Obj(vec![
            ("schema".into(), Json::Str(SERVE_SCHEMA.into())),
            ("id".into(), Json::Str(self.id.clone())),
            ("scene".into(), Json::Str(self.scene.id.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("state".into(), Json::Str(self.state.as_str().into())),
            (
                "config_hash".into(),
                Json::Str(self.manifest.config_hash.clone()),
            ),
            ("manifest".into(), manifest),
            ("worker".into(), opt_num(self.worker.map(|w| w as f64))),
            ("events".into(), Json::Num(self.events as f64)),
            ("sim_secs".into(), Json::Num(self.sim_secs)),
            ("sim_end_secs".into(), Json::Num(self.sim_end_secs)),
            ("progress".into(), Json::Num(progress)),
            ("wall_secs".into(), opt_num(self.wall_secs)),
            (
                "error".into(),
                self.error
                    .as_ref()
                    .map_or(Json::Null, |e| Json::Str(e.clone())),
            ),
        ])
        .dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_scene() -> Scene {
        phantom_scene::parse_scene(
            r#"{
                "schema": "phantom-scene/1",
                "id": "record-test",
                "describe": "job record fixture",
                "algorithm": "phantom",
                "duration_ms": 250,
                "switches": ["s1", "s2"],
                "trunks": [{"a": "s1", "b": "s2", "mbps": 150, "prop_us": 10}],
                "sessions": [{"id": "g0", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}}],
                "bottleneck": 0
            }"#,
        )
        .expect("fixture validates")
    }

    #[test]
    fn record_carries_schema_hash_and_state_machine() {
        let dir = std::env::temp_dir();
        let mut job = Job::new("job-0001".into(), fixture_scene(), 1996, &dir);
        let j = Json::parse(&job.record_json()).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SERVE_SCHEMA));
        assert_eq!(j.get("id").unwrap().as_str(), Some("job-0001"));
        assert_eq!(j.get("state").unwrap().as_str(), Some("queued"));
        assert_eq!(j.get("seed").unwrap().as_f64(), Some(1996.0));
        assert_eq!(j.get("sim_end_secs").unwrap().as_f64(), Some(0.25));
        let hash = j.get("config_hash").unwrap().as_str().unwrap();
        assert_eq!(hash.len(), 16, "fnv1a config hash is 16 hex digits");
        assert!(hash.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(
            j.get("manifest").unwrap().get("schema").unwrap().as_str(),
            Some("phantom-trace/1")
        );
        // The manifest matches what `phantom run` stamps on its trace,
        // which is what makes server and CLI traces byte-identical.
        assert_eq!(
            j.get("manifest")
                .unwrap()
                .get("config_hash")
                .unwrap()
                .as_str(),
            Some(hash)
        );

        assert!(!JobState::Running.is_terminal());
        for s in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert!(s.is_terminal());
        }
        job.state = JobState::Done;
        let j = Json::parse(&job.record_json()).unwrap();
        assert_eq!(j.get("progress").unwrap().as_f64(), Some(1.0));
    }
}
