//! A hand-rolled HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The workspace builds without external crates, so the daemon speaks
//! exactly the subset of HTTP/1.1 it needs: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies on
//! requests and plain responses, and `Transfer-Encoding: chunked` for
//! the live trace/analysis streams whose length is unknown while the
//! job is still running. Both the server and the [`crate::client`]
//! module use the same reader/writer helpers, so the wire format is
//! exercised end-to-end by every integration test.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted request body (a scene document).
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Header (lower-cased name, value) pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lower-cased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (`k=v` pairs split on `&`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Read one request off `stream`. `Ok(None)` means the peer closed the
/// connection before sending anything (a clean no-op). Malformed or
/// oversized requests are `Err` — the caller answers 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut r = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; request heads are tiny and
    // BufReader amortizes the syscalls.
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(bad("connection closed mid-request"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    if parts.next() != Some("HTTP/1.1") && !request_line.ends_with("HTTP/1.0") {
        return Err(bad("not an HTTP/1.x request"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a complete response with a `Content-Length` body and close
/// semantics.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Start a chunked response; follow with [`write_chunk`] calls and one
/// [`end_chunks`].
pub fn start_chunked(stream: &mut TcpStream, status: u16, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    )?;
    stream.flush()
}

/// Write one non-empty chunk (an empty chunk would terminate the
/// stream, so zero-length writes are skipped).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn end_chunks(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// One parsed response, as read by the client side.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value, empty when absent.
    pub content_type: String,
    /// The body, chunked transfer decoded when the server streamed it.
    pub body: Vec<u8>,
}

/// Read a complete response (client side). Decodes
/// `Transfer-Encoding: chunked`; otherwise honours `Content-Length`,
/// falling back to read-to-EOF (legal under `Connection: close`).
pub fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_type = String::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        r.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let (k, v) = (k.trim().to_ascii_lowercase(), v.trim());
        match k.as_str() {
            "content-type" => content_type = v.to_string(),
            "content-length" => {
                content_length = Some(v.parse().map_err(|_| bad("bad content-length"))?)
            }
            "transfer-encoding" => chunked = v.eq_ignore_ascii_case("chunked"),
            _ => {}
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            r.read_line(&mut size_line)?;
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                let mut crlf = String::new();
                let _ = r.read_line(&mut crlf);
                break;
            }
            let at = body.len();
            body.resize(at + size, 0);
            r.read_exact(&mut body[at..])?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
        }
    } else if let Some(len) = content_length {
        body.resize(len, 0);
        r.read_exact(&mut body)?;
    } else {
        r.read_to_end(&mut body)?;
    }
    Ok(Response {
        status,
        content_type,
        body,
    })
}
