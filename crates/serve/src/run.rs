//! Run one admitted job on a worker thread.
//!
//! The probe and manifest assembly mirrors the CLI's scene runner
//! (`phantom run scene.json --trace --analyze`) *exactly* — same
//! [`Manifest::new`] arguments, same `JsonlProbe::with_manifest` spool,
//! same [`run_standard`] drive — which is what makes a trace streamed
//! from the daemon byte-identical to one written by `phantom run` for
//! the same `(scene, seed)`. The only additions are a [`CancelToken`]
//! installed for the engine thread (cooperative cancellation at
//! calendar-slice granularity) and a heartbeat callback fired between
//! pre-drive slices; both are pure observability and change no event.

use phantom_analyze::{AnalysisSink, StreamingAnalyzer, DEFAULT_WINDOW_SECS};
use phantom_metrics::manifest::{Manifest, TRACE_SCHEMA};
use phantom_scenarios::atm::run_standard;
use phantom_scene::{analysis_targets, compile, CompiledScene, Scene};
use phantom_sim::probe::{Probe, ProbeGuard, TeeProbe};
use phantom_sim::{telemetry, CancelGuard, CancelToken, SimTime};
use std::path::Path;

/// Heartbeat slices per run: the engine is pre-driven to the horizon in
/// this many pieces so the job table can report live progress. The
/// results are identical to one big `run_until` (the PR 7 contract).
const HEARTBEAT_SLICES: u64 = 20;

/// Cap on the sim-time width of one heartbeat slice (10 ms). Without
/// it a long-horizon job on a big scene would report no progress for
/// minutes of wall time between beats.
const MAX_HEARTBEAT_STEP_NS: u64 = 10_000_000;

/// What one finished run produced.
pub struct JobOutcome {
    /// Events the engine dispatched.
    pub events: u64,
    /// True when the run stopped on the cancel token.
    pub cancelled: bool,
    /// Wall-clock seconds spent driving the engine.
    pub wall_secs: f64,
}

/// Compile and run `scene` under `seed`, spooling the trace to
/// `trace_path` and the final `phantom-analysis/1` report to
/// `analysis_path`. `heartbeat(events, sim_secs)` fires after every
/// pre-drive slice; `cancel` stops the run cooperatively.
pub fn run_job(
    scene: &Scene,
    seed: u64,
    trace_path: &Path,
    analysis_path: &Path,
    cancel: CancelToken,
    heartbeat: &mut dyn FnMut(u64, f64),
) -> Result<JobOutcome, String> {
    let wall_start = std::time::Instant::now();
    let manifest = Manifest::new(TRACE_SCHEMA, &scene.id, seed, &scene.id);
    let CompiledScene {
        mut engine,
        net,
        until,
        bottleneck,
        traced,
        tail_from_secs,
    } = compile(scene, seed);

    let analyzer = StreamingAnalyzer::new(&manifest, analysis_targets(scene), DEFAULT_WINDOW_SECS);
    let (sink, handle) = AnalysisSink::new(analyzer);
    let file = std::fs::File::create(trace_path)
        .map_err(|e| format!("cannot create spool {}: {e}", trace_path.display()))?;
    let trace = phantom_sim::JsonlProbe::with_manifest(file, &manifest.to_json())
        .map_err(|e| format!("cannot write spool {}: {e}", trace_path.display()))?;
    // Probe order matches the CLI runner: analysis tap, then trace.
    let _guard = ProbeGuard::install(Box::new(
        TeeProbe::new()
            .and(Box::new(sink) as Box<dyn Probe>)
            .and(Box::new(trace)),
    ));
    let _cancel_guard = CancelGuard::new(cancel);

    let marker = telemetry::begin_run();
    let events_before = phantom_sim::thread_events_dispatched();
    // Pre-drive to the horizon in heartbeat slices (the engine checks
    // the cancel token once per calendar slice inside each call);
    // `run_standard`'s own `run_until(until)` then finds no work left.
    let step = (until.0 / HEARTBEAT_SLICES).clamp(1, MAX_HEARTBEAT_STEP_NS);
    let mut target = 0u64;
    while target < until.0 && !engine.cancelled() {
        target = (target + step).min(until.0);
        engine.run_until(SimTime(target));
        heartbeat(
            phantom_sim::thread_events_dispatched() - events_before,
            engine.now().as_secs_f64(),
        );
    }
    let (engine, _net, _result) = run_standard(
        engine,
        net,
        until,
        &scene.id,
        &scene.describe,
        "compiled from a phantom-scene/1 file",
        bottleneck,
        &traced,
        tail_from_secs,
    );
    let cancelled = engine.cancelled();
    let events = phantom_sim::thread_events_dispatched() - events_before;
    let _counters = marker.finish();
    drop(_guard); // flush the spooled trace before the state flips
    if let Some(report) = handle.finish() {
        std::fs::write(analysis_path, report.to_json())
            .map_err(|e| format!("cannot write analysis {}: {e}", analysis_path.display()))?;
    }
    Ok(JobOutcome {
        events,
        cancelled,
        wall_secs: wall_start.elapsed().as_secs_f64(),
    })
}
