//! The topology-file parser.
//!
//! Line-oriented: `#` starts a comment, blank lines are skipped, each
//! line is `keyword arg…` with optional `key=value` options at the end.
//! Durations accept `us|ms|s` suffixes; rates accept `mbps|kbps`.

use crate::spec::{AlgorithmSpec, SessionSpec, TopologySpec, TrafficSpec, TrunkSpec};
use phantom_sim::{SimDuration, SimTime};
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a duration token: `10us`, `30ms`, `2s`, `0.5s`.
pub fn parse_duration(tok: &str) -> Result<SimDuration, String> {
    let (num, unit) = split_unit(tok)?;
    let secs = match unit {
        "us" => num * 1e-6,
        "ms" => num * 1e-3,
        "s" => num,
        other => return Err(format!("unknown time unit '{other}' (use us/ms/s)")),
    };
    if secs < 0.0 {
        return Err("durations cannot be negative".into());
    }
    Ok(SimDuration::from_secs_f64(secs))
}

/// Parse a rate token: `150mbps`, `64kbps`.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
pub fn parse_rate_mbps(tok: &str) -> Result<f64, String> {
    let (num, unit) = split_unit(tok)?;
    let mbps = match unit {
        "mbps" => num,
        "kbps" => num / 1e3,
        "gbps" => num * 1e3,
        other => return Err(format!("unknown rate unit '{other}' (use kbps/mbps/gbps)")),
    };
    if !(mbps > 0.0) {
        return Err("rates must be positive".into());
    }
    Ok(mbps)
}

fn split_unit(tok: &str) -> Result<(f64, &str), String> {
    let split = tok
        .char_indices()
        .find(|&(_, c)| c.is_ascii_alphabetic())
        .map(|(i, _)| i)
        .ok_or_else(|| format!("'{tok}' is missing a unit"))?;
    let (num, unit) = tok.split_at(split);
    let value: f64 = num
        .parse()
        .map_err(|_| format!("'{num}' is not a number"))?;
    Ok((value, unit))
}

/// Split trailing `key=value` options off an argument list.
fn split_opts<'a>(args: &'a [&'a str]) -> (&'a [&'a str], Vec<(&'a str, &'a str)>) {
    let first_opt = args
        .iter()
        .position(|a| a.contains('='))
        .unwrap_or(args.len());
    let opts = args[first_opt..]
        .iter()
        .filter_map(|a| a.split_once('='))
        .collect();
    (&args[..first_opt], opts)
}

/// Parse a whole topology file.
///
/// ```
/// let spec = phantom_cli::parse_str(
///     "switch a\nswitch b\ntrunk a b 150mbps 10us\nsession a b greedy\n",
/// )
/// .unwrap();
/// assert_eq!(spec.switches.len(), 2);
/// assert_eq!(spec.sessions.len(), 1);
/// ```
pub fn parse_str(input: &str) -> Result<TopologySpec, ParseError> {
    let mut spec = TopologySpec {
        duration: SimDuration::from_millis(500),
        seed: 1996,
        ..TopologySpec::default()
    };
    let mut saw_run = false;

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let (kw, rest) = (toks[0], &toks[1..]);
        match kw {
            "switch" => {
                let (pos, opts) = split_opts(rest);
                if pos.len() != 1 || !opts.is_empty() {
                    return err(lineno, "usage: switch <name>");
                }
                spec.switches.push(pos[0].to_string());
            }
            "trunk" => {
                let (pos, opts) = split_opts(rest);
                if pos.len() != 4 {
                    return err(lineno, "usage: trunk <a> <b> <rate> <prop> [loss=0.01]");
                }
                let mbps = parse_rate_mbps(pos[2]).map_err(|m| ParseError {
                    line: lineno,
                    msg: m,
                })?;
                let prop = parse_duration(pos[3]).map_err(|m| ParseError {
                    line: lineno,
                    msg: m,
                })?;
                let mut loss = 0.0;
                for (k, v) in &opts {
                    match *k {
                        "loss" => {
                            loss = v.parse().map_err(|_| ParseError {
                                line: lineno,
                                msg: format!("'{v}' is not a probability"),
                            })?
                        }
                        other => return err(lineno, format!("unknown option '{other}'")),
                    }
                }
                spec.trunks.push(TrunkSpec {
                    a: pos[0].to_string(),
                    b: pos[1].to_string(),
                    mbps,
                    prop,
                    loss,
                });
            }
            "priority" => {
                let (pos, opts) = split_opts(rest);
                if pos != ["cbr"] || !opts.is_empty() {
                    return err(lineno, "usage: priority cbr");
                }
                spec.cbr_priority = true;
            }
            "cbr" => {
                // cbr <sw>... <rate> [on=|off= (periodic) | rtt=]
                let (pos, opts) = split_opts(rest);
                if pos.len() < 3 {
                    return err(lineno, "usage: cbr <sw>... <rate> [on=|off=|start=|rtt=]");
                }
                let mbps = parse_rate_mbps(pos[pos.len() - 1]).map_err(|m| ParseError {
                    line: lineno,
                    msg: m,
                })?;
                let path: Vec<String> =
                    pos[..pos.len() - 1].iter().map(|s| s.to_string()).collect();
                let mut start = SimTime::ZERO;
                let mut on = None;
                let mut off = None;
                let mut access_prop = SimDuration::from_micros(10);
                for (k, v) in &opts {
                    let d = parse_duration(v).map_err(|m| ParseError {
                        line: lineno,
                        msg: m,
                    })?;
                    match *k {
                        "start" => start = SimTime(d.as_nanos()),
                        "on" => on = Some(d),
                        "off" => off = Some(d),
                        "rtt" => access_prop = d,
                        other => return err(lineno, format!("unknown option '{other}'")),
                    }
                }
                let traffic = match (on, off) {
                    (Some(on), Some(off)) => TrafficSpec::OnOff { start, on, off },
                    (None, None) => TrafficSpec::Greedy,
                    _ => return err(lineno, "cbr needs both on= and off= (or neither)"),
                };
                spec.sessions.push(SessionSpec {
                    path,
                    traffic,
                    access_prop,
                    cbr_mbps: Some(mbps),
                });
            }
            "session" => {
                let (pos, opts) = split_opts(rest);
                if pos.len() < 3 {
                    return err(
                        lineno,
                        "usage: session <sw>... <greedy|window|onoff> [key=value...]",
                    );
                }
                let model = pos[pos.len() - 1];
                let path: Vec<String> =
                    pos[..pos.len() - 1].iter().map(|s| s.to_string()).collect();
                let mut start = SimTime::ZERO;
                let mut stop = SimTime::MAX;
                let mut on = SimDuration::from_millis(30);
                let mut off = SimDuration::from_millis(30);
                let mut access_prop = SimDuration::from_micros(10);
                for (k, v) in &opts {
                    let d = parse_duration(v).map_err(|m| ParseError {
                        line: lineno,
                        msg: m,
                    })?;
                    match *k {
                        "start" => start = SimTime(d.as_nanos()),
                        "stop" => stop = SimTime(d.as_nanos()),
                        "on" => on = d,
                        "off" => off = d,
                        "rtt" => access_prop = d,
                        other => return err(lineno, format!("unknown option '{other}'")),
                    }
                }
                let traffic = match model {
                    "greedy" => TrafficSpec::Greedy,
                    "window" => TrafficSpec::Window { start, stop },
                    "onoff" => TrafficSpec::OnOff { start, on, off },
                    "random" => TrafficSpec::Random {
                        mean_on: on,
                        mean_off: off,
                    },
                    other => {
                        return err(
                            lineno,
                            format!("unknown traffic model '{other}' (greedy/window/onoff/random)"),
                        )
                    }
                };
                spec.sessions.push(SessionSpec {
                    path,
                    traffic,
                    access_prop,
                    cbr_mbps: None,
                });
            }
            "algorithm" => {
                let (pos, opts) = split_opts(rest);
                if pos.len() != 1 {
                    return err(lineno, "usage: algorithm <name> [u=<factor>]");
                }
                let mut u = 5.0;
                for (k, v) in &opts {
                    match *k {
                        "u" => {
                            u = v.parse().map_err(|_| ParseError {
                                line: lineno,
                                msg: format!("'{v}' is not a number"),
                            })?
                        }
                        other => return err(lineno, format!("unknown option '{other}'")),
                    }
                }
                spec.algorithm = match pos[0] {
                    "phantom" => AlgorithmSpec::Phantom { u },
                    "phantom-ni" => AlgorithmSpec::PhantomNi,
                    "eprca" => AlgorithmSpec::Eprca,
                    "aprc" => AlgorithmSpec::Aprc,
                    "capc" => AlgorithmSpec::Capc,
                    "erica" => AlgorithmSpec::Erica,
                    "osu" => AlgorithmSpec::Osu,
                    other => return err(lineno, format!("unknown algorithm '{other}'")),
                };
            }
            "run" => {
                let (pos, opts) = split_opts(rest);
                if pos.len() != 1 {
                    return err(lineno, "usage: run <duration> [seed=<n>]");
                }
                spec.duration = parse_duration(pos[0]).map_err(|m| ParseError {
                    line: lineno,
                    msg: m,
                })?;
                for (k, v) in &opts {
                    match *k {
                        "seed" => {
                            spec.seed = v.parse().map_err(|_| ParseError {
                                line: lineno,
                                msg: format!("'{v}' is not a seed"),
                            })?
                        }
                        other => return err(lineno, format!("unknown option '{other}'")),
                    }
                }
                saw_run = true;
            }
            other => return err(lineno, format!("unknown keyword '{other}'")),
        }
    }
    if !saw_run {
        // keep the default duration; that's fine
    }
    spec.validate()
        .map_err(|m| ParseError { line: 0, msg: m })?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a dumbbell
switch s1
switch s2
trunk s1 s2 150mbps 10us
session s1 s2 greedy
session s1 s2 onoff start=100ms on=30ms off=30ms
session s1 s2 greedy rtt=5ms
algorithm phantom u=8
run 500ms seed=7
";

    #[test]
    fn parses_the_full_grammar() {
        let spec = parse_str(GOOD).unwrap();
        assert_eq!(spec.switches, vec!["s1", "s2"]);
        assert_eq!(spec.trunks.len(), 1);
        assert_eq!(spec.trunks[0].mbps, 150.0);
        assert_eq!(spec.trunks[0].prop, SimDuration::from_micros(10));
        assert_eq!(spec.sessions.len(), 3);
        assert_eq!(spec.sessions[0].traffic, TrafficSpec::Greedy);
        assert_eq!(
            spec.sessions[1].traffic,
            TrafficSpec::OnOff {
                start: SimTime::from_millis(100),
                on: SimDuration::from_millis(30),
                off: SimDuration::from_millis(30),
            }
        );
        assert_eq!(spec.sessions[2].access_prop, SimDuration::from_millis(5));
        assert_eq!(spec.algorithm, AlgorithmSpec::Phantom { u: 8.0 });
        assert_eq!(spec.duration, SimDuration::from_millis(500));
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = parse_str(
            "switch a\n\n# comment\nswitch b\ntrunk a b 1mbps 1ms # inline\nsession a b greedy\n",
        )
        .unwrap();
        assert_eq!(spec.switches.len(), 2);
    }

    #[test]
    fn error_carries_line_number() {
        let e = parse_str("switch a\nbogus line here\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown keyword"));
    }

    #[test]
    fn bad_units_are_rejected() {
        assert!(parse_duration("10parsecs").is_err());
        assert!(parse_duration("ms").is_err());
        assert!(parse_rate_mbps("100").is_err());
        assert!(parse_rate_mbps("-5mbps").is_err());
        assert!(parse_duration("10us").unwrap() == SimDuration::from_micros(10));
        assert!((parse_rate_mbps("64kbps").unwrap() - 0.064).abs() < 1e-12);
        assert!((parse_rate_mbps("1gbps").unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_algorithm_or_model_rejected() {
        let e =
            parse_str("switch a\nswitch b\ntrunk a b 1mbps 1ms\nsession a b tcp\n").unwrap_err();
        assert!(e.msg.contains("unknown traffic model"));
        let e = parse_str(
            "switch a\nswitch b\ntrunk a b 1mbps 1ms\nsession a b greedy\nalgorithm bgp\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown algorithm"));
    }

    #[test]
    fn validation_failures_surface() {
        let e = parse_str("switch a\nswitch b\nsession a b greedy\n").unwrap_err();
        assert!(e.msg.contains("no trunk"));
    }

    #[test]
    fn all_algorithms_parse() {
        for alg in [
            "phantom",
            "phantom-ni",
            "eprca",
            "aprc",
            "capc",
            "erica",
            "osu",
        ] {
            let src = format!(
                "switch a\nswitch b\ntrunk a b 1mbps 1ms\nsession a b greedy\nalgorithm {alg}\n"
            );
            assert!(parse_str(&src).is_ok(), "{alg} failed to parse");
        }
    }
}

#[cfg(test)]
mod extended_grammar_tests {
    use super::*;
    use crate::spec::TrafficSpec;

    const FULL: &str = "\
switch s1
switch s2
trunk s1 s2 150mbps 10us loss=0.01
session s1 s2 random on=20ms off=60ms
cbr s1 s2 20mbps
cbr s1 s2 10mbps on=100ms off=100ms
priority cbr
algorithm phantom
run 300ms seed=9
";

    #[test]
    fn parses_cbr_loss_priority_and_random() {
        let spec = parse_str(FULL).unwrap();
        assert_eq!(spec.trunks[0].loss, 0.01);
        assert!(spec.cbr_priority);
        assert_eq!(spec.sessions.len(), 3);
        assert!(matches!(
            spec.sessions[0].traffic,
            TrafficSpec::Random { .. }
        ));
        assert_eq!(spec.sessions[1].cbr_mbps, Some(20.0));
        assert!(matches!(
            spec.sessions[2].traffic,
            TrafficSpec::OnOff { .. }
        ));
    }

    #[test]
    fn cbr_needs_matching_on_off() {
        let bad = "switch a\nswitch b\ntrunk a b 1mbps 1ms\ncbr a b 1mbps on=5ms\n";
        let e = parse_str(bad).unwrap_err();
        assert!(e.msg.contains("both on= and off="));
    }

    #[test]
    fn full_grammar_file_actually_runs() {
        let spec = parse_str(FULL).unwrap();
        let report = crate::exec::run_spec(&spec).unwrap();
        // 3 sessions (1 ABR random + 2 CBR): everyone reported.
        assert_eq!(report.session_rates_mbps.len(), 3);
        // The greedy CBR delivers close to its configured 20 Mb/s minus
        // the 1% wire loss.
        assert!(
            (report.session_rates_mbps[1] - 20.0).abs() < 2.0,
            "cbr rate {:.1}",
            report.session_rates_mbps[1]
        );
    }
}
