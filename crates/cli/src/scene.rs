//! Run a `phantom-scene/1` file through the CLI's observability stack.
//!
//! The trace manifest and probe plumbing mirror the sweep harness
//! (`phantom_scenarios::sweep`) exactly — scenario and config are both
//! the scene id — so a trace written by `phantom run scene.json --trace`
//! is byte-identical to the one `repro <id> --scenes DIR --trace-dir`
//! writes for the same seed. The analysis tap, by contrast, uses the
//! targets *the scene itself declares* (`analysis_targets`), since the
//! file in hand is the authority when running it directly.

use crate::checkpoint::{CkptDriver, KIND_SCENE};
use crate::exec::{
    arm_flight, install_probes, run_driver, trace_probe, write_metrics, write_profile, RunOptions,
};
use phantom_analyze::{AnalysisHandle, AnalysisReport, AnalysisSink, StreamingAnalyzer};
use phantom_metrics::manifest::{Manifest, METRICS_SCHEMA, TRACE_SCHEMA};
use phantom_metrics::{ExperimentResult, Registry};
use phantom_scenarios::atm::run_standard;
use phantom_scene::{analysis_targets, compile, CompiledScene, Scene};
use phantom_sim::probe::Probe;
use phantom_sim::profile;
use phantom_sim::telemetry::{self, RunCounters};

/// Everything one scene run produced.
pub struct SceneReport {
    /// The standard figure panels + metrics (same output as `repro`).
    pub result: ExperimentResult,
    /// Simulator events dispatched by this run.
    pub events: u64,
    /// Drop/retransmit/queue-peak telemetry observed during the run.
    pub counters: RunCounters,
    /// The live analysis report, when a window was requested.
    pub analysis: Option<AnalysisReport>,
}

/// Compile and run a validated scene with the requested observability:
/// optional JSONL trace, optional metrics snapshot, optional live
/// `phantom-analysis/1` tap with window width `analyze_window` seconds,
/// plus the run-wide options (heartbeat, status file, engine profile,
/// panic flight recorder). None of them changes the simulation.
pub fn run_scene_opts(
    scene: &Scene,
    seed: u64,
    analyze_window: Option<f64>,
    opts: &RunOptions,
) -> Result<SceneReport, String> {
    if opts.shards > 0 && opts.checkpoint_every.is_some() {
        return Err(
            "--shards is not yet compatible with --checkpoint-every: checkpoints are only \
             well-defined at shard epoch barriers; drop one of the two flags"
                .into(),
        );
    }
    // Scoped to this run; restored on drop, panics included.
    let _shard_guard = phantom_sim::ShardGuard::new(opts.shards);
    let wall_start = std::time::Instant::now();
    let manifest = Manifest::new(TRACE_SCHEMA, &scene.id, seed, &scene.id);
    let CompiledScene {
        mut engine,
        net,
        until,
        bottleneck,
        traced,
        tail_from_secs,
    } = compile(scene, seed);

    let registry = opts.metrics.as_ref().map(|_| {
        let r = Registry::new();
        net.bind_metrics(&mut engine, &r);
        r
    });

    let (tap, handle) = match analyze_window {
        Some(window) => {
            let analyzer = StreamingAnalyzer::new(&manifest, analysis_targets(scene), window);
            let (sink, handle) = AnalysisSink::new(analyzer);
            (Some(Box::new(sink) as Box<dyn Probe>), Some(handle))
        }
        None => (None, None),
    };
    let (_flight_guard, flight_probe) = arm_flight(opts, &manifest);
    let mut probes: Vec<Box<dyn Probe>> = Vec::new();
    if let Some(tap) = tap {
        probes.push(tap);
    }
    if let Some(trace) = trace_probe(opts, &manifest)? {
        probes.push(trace);
    }
    if let Some(flight) = flight_probe {
        probes.push(flight);
    }
    let guard = install_probes(probes);

    let marker = telemetry::begin_run();
    let prof = opts.profile.as_ref().map(|_| profile::begin_profile());
    let events_before = phantom_sim::thread_events_dispatched();
    // Pre-drive the engine to `until` in heartbeat slices when liveness
    // or checkpointing was requested; `run_standard`'s first action is
    // `run_until(until)`, which then finds no work left, so the results
    // are identical.
    let mut ckpt = CkptDriver::from_opts(opts, &manifest, KIND_SCENE, until, &marker)?;
    if opts.verbose || opts.status_file.is_some() || ckpt.is_some() {
        run_driver(&mut engine, until, opts, &scene.id, seed, ckpt.as_mut())?;
    }
    drop(ckpt);
    let (_engine, _net, result) = run_standard(
        engine,
        net,
        until,
        &scene.id,
        &scene.describe,
        "compiled from a phantom-scene/1 file",
        bottleneck,
        &traced,
        tail_from_secs,
    );
    let events = phantom_sim::thread_events_dispatched() - events_before;
    let report = prof.map(profile::ProfileMarker::finish);
    let counters = marker.finish();
    drop(guard); // flushes the trace file
    let analysis = handle.and_then(AnalysisHandle::finish);

    if let (Some(path), Some(reg)) = (&opts.metrics, &registry) {
        write_metrics(path, reg, &manifest.for_schema(METRICS_SCHEMA))?;
    }
    if let (Some(path), Some(report)) = (&opts.profile, report) {
        write_profile(path, &manifest, wall_start.elapsed().as_secs_f64(), report)?;
    }

    Ok(SceneReport {
        result,
        events,
        counters,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phantom_scene::parse_scene;

    const DUMBBELL_SCENE: &str = r#"{
        "schema": "phantom-scene/1",
        "id": "cli-scene-test",
        "describe": "two greedy sessions for the CLI scene runner",
        "algorithm": "phantom",
        "duration_ms": 400,
        "switches": ["s1", "s2"],
        "trunks": [{"a": "s1", "b": "s2", "mbps": 150, "prop_us": 10}],
        "sessions": [
            {"id": "g0", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}},
            {"id": "g1", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}}
        ],
        "bottleneck": 0,
        "analysis": {"n_sessions": 2}
    }"#;

    #[test]
    fn scene_run_reports_convergence_and_artifacts() {
        let scene = parse_scene(DUMBBELL_SCENE).unwrap();
        let dir = std::env::temp_dir().join(format!("phantom-cli-scene-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            trace: Some(dir.join("run.jsonl")),
            metrics: Some(dir.join("run.prom")),
            profile: Some(dir.join("run.profile.json")),
            status_file: Some(dir.join("run.status.json")),
            ..RunOptions::default()
        };
        let report = run_scene_opts(
            &scene,
            1996,
            Some(phantom_analyze::DEFAULT_WINDOW_SECS),
            &opts,
        )
        .unwrap();
        assert!(report.events > 100_000);
        let rendered = report.result.render(0);
        assert!(rendered.contains("cli-scene-test"), "{rendered}");
        // MACR fixed point 150/(1+2·5) Mb/s ≈ 13.64.
        let analysis = report.analysis.expect("analysis tap enabled");
        let err = analysis.metric("fixed_point_error_rel").unwrap();
        assert!(err < 0.05, "fixed-point error {err}");

        let trace = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
        let first = trace.lines().next().unwrap();
        assert!(first.contains("\"schema\":\"phantom-trace/1\""), "{first}");
        assert!(first.contains("\"scenario\":\"cli-scene-test\""), "{first}");
        assert!(trace.lines().count() > 1);
        let prom = std::fs::read_to_string(dir.join("run.prom")).unwrap();
        assert!(prom.starts_with("# manifest: {\"schema\":\"phantom-metrics/1\""));
        let profile = std::fs::read_to_string(dir.join("run.profile.json")).unwrap();
        assert!(profile.starts_with("{\n  \"schema\": \"phantom-profile/1\""));
        assert!(profile.contains("\"scenario\":\"cli-scene-test\""));
        assert!(profile.contains("\"calendar.pop\""));
        let status = std::fs::read_to_string(dir.join("run.status.json")).unwrap();
        assert!(
            status.starts_with("{\"schema\": \"phantom-status/1\""),
            "{status}"
        );
        assert!(status.contains("\"state\": \"done\""));
        assert!(status.contains("\"unit\": \"slices\""));
        let _ = std::fs::remove_dir_all(&dir);

        // Untraced rerun is identical: observability never changes the run.
        let plain = run_scene_opts(&scene, 1996, None, &RunOptions::default()).unwrap();
        assert_eq!(plain.events, report.events);
        assert_eq!(plain.result.render(0), rendered);
    }
}
