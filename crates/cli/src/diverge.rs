//! `phantom diverge`: find the first divergent event between two traces
//! and, with checkpoints available, localize it to engine state.
//!
//! Two runs of the same `(topology, seed)` must produce byte-identical
//! traces; when they don't (a perturbed config, a nondeterminism bug, a
//! platform difference), the interesting question is *where the
//! trajectories first separate*. This streams both traces line by line,
//! reports the first differing line with a ring of preceding common
//! context, and — given a `--checkpoints` directory from run A — restores
//! the nearest prior checkpoint, replays it to just before the divergent
//! instant, and dumps the engine-state delta accumulated since the
//! checkpoint (per-node field changes, pending-event changes) as a
//! `phantom-diverge/1` report.

use crate::checkpoint::{nearest_checkpoint, read_checkpoint, rebuild, Rebuilt};
use phantom_analyze::jsonl::{parse_flat_object, Scalar};
use phantom_metrics::json::{json_f64, json_str};
use phantom_metrics::manifest::DIVERGE_SCHEMA;
use phantom_sim::{EngineSnapshot, SimTime};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// How `phantom diverge` runs.
#[derive(Clone, Debug)]
pub struct DivergeOptions {
    /// Common lines retained before the divergence (`--context N`).
    pub context: usize,
    /// Checkpoint directory from run A (`--checkpoints DIR`); enables
    /// the engine-state diff.
    pub checkpoints: Option<PathBuf>,
}

impl Default for DivergeOptions {
    fn default() -> Self {
        DivergeOptions {
            context: 8,
            checkpoints: None,
        }
    }
}

/// What the comparison found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DivergeOutcome {
    /// Every line matched.
    Identical {
        /// Total lines compared (manifest included).
        lines: u64,
    },
    /// The traces differ.
    Diverged {
        /// 1-based line number of the first difference.
        line: u64,
    },
}

/// Maximum event-delta records emitted per direction before summarizing.
const EVENT_DELTA_CAP: usize = 50;

/// Compare two traces; returns the outcome plus the full
/// `phantom-diverge/1` report text (JSONL, ready for stdout or `--out`).
pub fn diverge(
    a_path: &Path,
    b_path: &Path,
    opts: &DivergeOptions,
) -> Result<(DivergeOutcome, String), String> {
    let open = |p: &Path| {
        std::fs::File::open(p)
            .map(std::io::BufReader::new)
            .map_err(|e| format!("cannot open trace {}: {e}", p.display()))
    };
    let mut a_lines = open(a_path)?.lines();
    let mut b_lines = open(b_path)?.lines();

    let mut ring: VecDeque<(u64, String)> = VecDeque::with_capacity(opts.context + 1);
    let mut line_no = 0u64;
    let divergence: Option<(u64, Option<String>, Option<String>)> = loop {
        let a = a_lines
            .next()
            .transpose()
            .map_err(|e| format!("read {}: {e}", a_path.display()))?;
        let b = b_lines
            .next()
            .transpose()
            .map_err(|e| format!("read {}: {e}", b_path.display()))?;
        line_no += 1;
        match (a, b) {
            (None, None) => break None,
            (Some(a), Some(b)) if a == b => {
                if opts.context > 0 {
                    if ring.len() == opts.context {
                        ring.pop_front();
                    }
                    ring.push_back((line_no, a));
                }
            }
            (a, b) => break Some((line_no, a, b)),
        }
    };

    let mut out = String::new();
    let identical = divergence.is_none();
    let _ = writeln!(
        out,
        "{{\"schema\":{},\"a\":{},\"b\":{},\"identical\":{},\"line\":{},\"context\":{}}}",
        json_str(DIVERGE_SCHEMA),
        json_str(&a_path.display().to_string()),
        json_str(&b_path.display().to_string()),
        identical,
        divergence
            .as_ref()
            .map_or_else(|| "null".to_string(), |(n, _, _)| n.to_string()),
        opts.context,
    );
    let Some((line, a_line, b_line)) = divergence else {
        // line_no counted one past the final pair (the simultaneous EOF).
        return Ok((DivergeOutcome::Identical { lines: line_no - 1 }, out));
    };
    for (n, l) in &ring {
        let _ = writeln!(
            out,
            "{{\"record\":\"context\",\"line\":{n},\"event\":{}}}",
            json_str(l)
        );
    }
    let _ = writeln!(
        out,
        "{{\"record\":\"first-divergence\",\"line\":{line},\"a\":{},\"b\":{}}}",
        a_line
            .as_deref()
            .map_or_else(|| "null".to_string(), json_str),
        b_line
            .as_deref()
            .map_or_else(|| "null".to_string(), json_str),
    );

    if let Some(dir) = &opts.checkpoints {
        localize(dir, a_line.as_deref(), b_line.as_deref(), &mut out)?;
    }
    Ok((DivergeOutcome::Diverged { line }, out))
}

/// Divergence instant in sim-nanoseconds, from the `"t"` (seconds) field
/// of whichever side still has a line.
fn divergence_instant_ns(a_line: Option<&str>, b_line: Option<&str>) -> Option<u64> {
    for line in [a_line, b_line].into_iter().flatten() {
        let Ok(pairs) = parse_flat_object(line) else {
            continue;
        };
        if let Some((_, Scalar::Num(t))) = pairs.iter().find(|(k, _)| k == "t") {
            if t.is_finite() && *t >= 0.0 {
                return Some((t * 1e9).round() as u64);
            }
        }
    }
    None
}

/// Restore the nearest prior checkpoint, replay to just before the
/// divergent instant, and append the engine-state delta records.
fn localize(
    dir: &Path,
    a_line: Option<&str>,
    b_line: Option<&str>,
    out: &mut String,
) -> Result<(), String> {
    let Some(t_ns) = divergence_instant_ns(a_line, b_line) else {
        let _ = writeln!(
            out,
            "{{\"record\":\"note\",\"text\":{}}}",
            json_str("divergent line carries no \"t\" field; cannot pick a checkpoint")
        );
        return Ok(());
    };
    // Strictly prior: a checkpoint taken exactly at the divergent
    // instant would leave nothing to replay (an empty diff), so step
    // back one boundary to show the window leading into the divergence.
    let Some(ckpt_path) = nearest_checkpoint(dir, t_ns.saturating_sub(1))? else {
        let _ = writeln!(
            out,
            "{{\"record\":\"note\",\"text\":{}}}",
            json_str(&format!(
                "no checkpoint at or before t={}s in {}",
                json_f64(t_ns as f64 / 1e9),
                dir.display()
            ))
        );
        return Ok(());
    };
    let doc = read_checkpoint(&ckpt_path)?;
    let before = doc.snap.clone();
    let _ = writeln!(
        out,
        "{{\"record\":\"checkpoint\",\"path\":{},\"now_ns\":{},\"events_processed\":{}}}",
        json_str(&ckpt_path.display().to_string()),
        json_str(&before.now.0.to_string()),
        json_str(&before.events_processed.to_string()),
    );

    // Replay run A's deterministic trajectory from the checkpoint to the
    // last instant strictly before the divergence.
    let replay_to = SimTime(t_ns.saturating_sub(1).max(before.now.0));
    let after = match rebuild(&doc)? {
        Rebuilt::Scene { mut engine, .. } => {
            engine.restore(&before)?;
            engine.run_until(replay_to);
            engine.snapshot()?
        }
        Rebuilt::Topology { mut engine, .. } => {
            engine.restore(&before)?;
            engine.run_until(replay_to);
            engine.snapshot()?
        }
    };
    let _ = writeln!(
        out,
        "{{\"record\":\"replay\",\"to_ns\":{},\"events_processed\":{}}}",
        json_str(&replay_to.0.to_string()),
        json_str(&after.events_processed.to_string()),
    );
    diff_snapshots(&before, &after, out);
    Ok(())
}

/// Parse a `KvWriter` token string into `(key, raw_value)` pairs. Values
/// stay percent-escaped — the diff compares and prints them verbatim,
/// which is exact and single-line by construction.
fn kv_pairs(state: &str) -> Vec<(&str, &str)> {
    state
        .split(' ')
        .filter(|t| !t.is_empty())
        .filter_map(|t| t.split_once('='))
        .collect()
}

fn diff_snapshots(before: &EngineSnapshot, after: &EngineSnapshot, out: &mut String) {
    let mut nodes_changed = 0u64;
    for (b, a) in before.nodes.iter().zip(&after.nodes) {
        let mut changed = false;
        if b.rng != a.rng {
            changed = true;
            let fmt = |r: &[u64; 4]| format!("{},{},{},{}", r[0], r[1], r[2], r[3]);
            let _ = writeln!(
                out,
                "{{\"record\":\"node-diff\",\"id\":{},\"type\":{},\"field\":\"rng\",\
                 \"before\":{},\"after\":{}}}",
                b.id,
                json_str(&b.type_name),
                json_str(&fmt(&b.rng)),
                json_str(&fmt(&a.rng)),
            );
        }
        if b.state != a.state {
            changed = true;
            let bv = kv_pairs(&b.state);
            let av = kv_pairs(&a.state);
            // Keys come out in writer order, identical across snapshots
            // of the same topology; walk the union preserving that order.
            let mut keys: Vec<&str> = bv.iter().map(|(k, _)| *k).collect();
            for (k, _) in &av {
                if !keys.contains(k) {
                    keys.push(k);
                }
            }
            for key in keys {
                let vb = bv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
                let va = av.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
                if vb != va {
                    let _ = writeln!(
                        out,
                        "{{\"record\":\"node-diff\",\"id\":{},\"type\":{},\"field\":{},\
                         \"before\":{},\"after\":{}}}",
                        b.id,
                        json_str(&b.type_name),
                        json_str(key),
                        vb.map_or_else(|| "null".to_string(), json_str),
                        va.map_or_else(|| "null".to_string(), json_str),
                    );
                }
            }
        }
        nodes_changed += u64::from(changed);
    }

    let key = |e: &phantom_sim::EventSnapshot| (e.time.0, e.seq, e.dst, e.msg.clone());
    let before_keys: std::collections::BTreeSet<_> = before.events.iter().map(key).collect();
    let after_keys: std::collections::BTreeSet<_> = after.events.iter().map(key).collect();
    let mut removed = 0u64;
    let mut added = 0u64;
    for (which, only) in [
        ("event-removed", before_keys.difference(&after_keys)),
        ("event-added", after_keys.difference(&before_keys)),
    ] {
        let mut emitted = 0usize;
        let mut total = 0u64;
        for (t_ns, seq, dst, msg) in only {
            total += 1;
            if emitted < EVENT_DELTA_CAP {
                emitted += 1;
                let _ = writeln!(
                    out,
                    "{{\"record\":{},\"t_ns\":{},\"seq\":{},\"dst\":{},\"msg\":{}}}",
                    json_str(which),
                    json_str(&t_ns.to_string()),
                    json_str(&seq.to_string()),
                    dst,
                    json_str(msg),
                );
            }
        }
        if total > EVENT_DELTA_CAP as u64 {
            let _ = writeln!(
                out,
                "{{\"record\":\"note\",\"text\":{}}}",
                json_str(&format!(
                    "{which}: {total} total, first {EVENT_DELTA_CAP} shown"
                ))
            );
        }
        match which {
            "event-removed" => removed = total,
            _ => added = total,
        }
    }
    let _ = writeln!(
        out,
        "{{\"record\":\"summary\",\"nodes_changed\":{nodes_changed},\
         \"events_added\":{added},\"events_removed\":{removed}}}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn identical_traces_report_identical() {
        let dir = std::env::temp_dir().join(format!("phantom-div-id-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = "{\"schema\":\"phantom-trace/1\"}\n{\"t\":0.1,\"kind\":\"cell\"}\n";
        let a = write(&dir, "a.jsonl", text);
        let b = write(&dir, "b.jsonl", text);
        let (outcome, report) = diverge(&a, &b, &DivergeOptions::default()).unwrap();
        assert_eq!(outcome, DivergeOutcome::Identical { lines: 2 });
        assert!(report.contains("\"identical\":true"));
        assert!(report.contains("\"line\":null"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_difference_is_localized_with_context() {
        let dir = std::env::temp_dir().join(format!("phantom-div-ctx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let head = "{\"schema\":\"phantom-trace/1\"}\n";
        let common: String = (0..10)
            .map(|i| format!("{{\"t\":0.{i},\"kind\":\"cell\",\"node\":1}}\n"))
            .collect();
        let a = write(
            &dir,
            "a.jsonl",
            &format!("{head}{common}{{\"t\":1.0,\"x\":1}}\n"),
        );
        let b = write(
            &dir,
            "b.jsonl",
            &format!("{head}{common}{{\"t\":1.0,\"x\":2}}\n"),
        );
        let opts = DivergeOptions {
            context: 3,
            checkpoints: None,
        };
        let (outcome, report) = diverge(&a, &b, &opts).unwrap();
        assert_eq!(outcome, DivergeOutcome::Diverged { line: 12 });
        assert_eq!(report.matches("\"record\":\"context\"").count(), 3);
        assert!(report.contains("\"record\":\"first-divergence\""));
        assert!(report.contains("\"a\":\"{\\\"t\\\":1.0,\\\"x\\\":1}\""));
        assert!(report.contains("\"b\":\"{\\\"t\\\":1.0,\\\"x\\\":2}\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_trace_being_a_prefix_of_the_other_diverges_at_the_eof() {
        let dir = std::env::temp_dir().join(format!("phantom-div-eof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = write(&dir, "a.jsonl", "x\ny\n");
        let b = write(&dir, "b.jsonl", "x\n");
        let (outcome, report) = diverge(&a, &b, &DivergeOptions::default()).unwrap();
        assert_eq!(outcome, DivergeOutcome::Diverged { line: 2 });
        assert!(report.contains("\"a\":\"y\",\"b\":null"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_diff_reports_field_and_event_deltas() {
        use phantom_sim::{EventSnapshot, NodeSnapshot};
        let node = |state: &str, rng: [u64; 4]| NodeSnapshot {
            id: 0,
            type_name: "demo::Sw".into(),
            rng,
            state: state.into(),
        };
        let ev = |t: u64, seq: u64| EventSnapshot {
            time: SimTime(t),
            seq,
            dst: 0,
            msg: "m".into(),
        };
        let before = EngineSnapshot {
            now: SimTime(0),
            events_processed: 0,
            next_seq: 2,
            nodes: vec![node("q=1 macr=5", [1, 2, 3, 4])],
            events: vec![ev(10, 0), ev(20, 1)],
        };
        let after = EngineSnapshot {
            now: SimTime(15),
            events_processed: 1,
            next_seq: 3,
            nodes: vec![node("q=2 macr=5", [9, 2, 3, 4])],
            events: vec![ev(20, 1), ev(30, 2)],
        };
        let mut out = String::new();
        diff_snapshots(&before, &after, &mut out);
        assert!(
            out.contains("\"field\":\"q\",\"before\":\"1\",\"after\":\"2\""),
            "{out}"
        );
        assert!(out.contains("\"field\":\"rng\""));
        assert!(!out.contains("\"field\":\"macr\""), "unchanged key: {out}");
        assert!(out.contains("\"record\":\"event-removed\",\"t_ns\":\"10\""));
        assert!(out.contains("\"record\":\"event-added\",\"t_ns\":\"30\""));
        assert!(out.contains(
            "\"record\":\"summary\",\"nodes_changed\":1,\"events_added\":1,\"events_removed\":1"
        ));
    }
}
