//! `phantom-checkpoint/1`: periodic engine checkpoints and `phantom
//! resume`.
//!
//! A checkpoint is one JSONL file carrying everything needed to continue
//! a run as if it had never stopped: the run's provenance manifest, the
//! original input text (scene JSON or topology DSL) so the topology can
//! be rebuilt, the trace file's byte offset at the snapshot instant, the
//! telemetry counters so far, and the engine's complete dynamic state
//! (every node's fields + RNG stream, the clock, and every pending
//! calendar event with its `(time, seq)` ordering key).
//!
//! The hard contract: a resumed run's event sequence is byte-identical
//! to the suffix of the uninterrupted run. Everything here serves that —
//! all `u64` values are rendered as JSON *strings* (RNG state words
//! exceed 2^53, the flat parser decodes numbers through `f64`), floats
//! inside node state use the engine's exact round-trip `key=value`
//! encoding, and checkpoint instants are aligned to absolute sim-time
//! boundaries so a resumed run re-checkpoints at the identical instants.

use crate::exec::{
    arm_flight, build_topology, collect_report, install_probes, run_driver, CheckpointEvery,
    RunOptions,
};
use phantom_analyze::jsonl::{parse_flat_object, Scalar};
use phantom_atm::AtmMsg;
use phantom_metrics::json::json_str;
use phantom_metrics::manifest::{
    fnv1a_64, Manifest, CHECKPOINT_SCHEMA, METRICS_SCHEMA, TRACE_SCHEMA,
};
use phantom_metrics::write_atomic;
use phantom_scenarios::atm::run_standard;
use phantom_scene::{compile, parse_scene, CompiledScene};
use phantom_sim::probe::{FilterProbe, JsonlProbe, KindSet, Probe};
use phantom_sim::telemetry::{self, RunCounters, RunMarker};
use phantom_sim::{Engine, EngineSnapshot, EventSnapshot, NodeSnapshot, SimTime};
use std::path::{Path, PathBuf};

/// `kind` value for checkpoints of a `phantom-scene/1` run.
pub const KIND_SCENE: &str = "scene";
/// `kind` value for checkpoints of a topology-DSL run.
pub const KIND_TOPOLOGY: &str = "topology";

/// Everything read back from one checkpoint file.
#[derive(Debug)]
pub struct CheckpointDoc {
    /// Scenario id from the provenance manifest.
    pub scenario: String,
    /// Master seed of the checkpointed run.
    pub seed: u64,
    /// Config fingerprint of the checkpointed run (16 hex digits);
    /// verified against the rebuilt topology before restoring.
    pub config_hash: String,
    /// [`KIND_SCENE`] or [`KIND_TOPOLOGY`].
    pub kind: String,
    /// The original input text, verbatim.
    pub source: String,
    /// The original run's horizon, in sim-nanoseconds.
    pub until_ns: u64,
    /// Byte length of the run's trace file at the snapshot instant
    /// (0 when the run was untraced). A resumed suffix trace appended
    /// at this offset reproduces the uninterrupted trace exactly.
    pub trace_offset: u64,
    /// Telemetry counters accumulated up to the snapshot instant.
    pub counters: RunCounters,
    /// The engine's complete dynamic state.
    pub snap: EngineSnapshot,
}

fn u64s(v: u64) -> String {
    format!("\"{v}\"")
}

/// Render a checkpoint as `phantom-checkpoint/1` JSONL text.
pub fn render_checkpoint(
    manifest: &Manifest,
    kind: &str,
    source: &str,
    until: SimTime,
    trace_offset: u64,
    counters: &RunCounters,
    snap: &EngineSnapshot,
) -> String {
    let mut out = String::with_capacity(snap.nodes.len() * 128 + snap.events.len() * 64 + 256);
    out.push_str(&manifest.for_schema(CHECKPOINT_SCHEMA).to_json());
    out.push('\n');
    out.push_str(&format!(
        "{{\"record\":\"run\",\"kind\":{},\"seed\":{},\"until_ns\":{},\
         \"trace_offset\":{},\"drops\":{},\"retransmits\":{},\"queue_peak\":{},\
         \"schedule_past\":{},\"source\":{}}}\n",
        json_str(kind),
        u64s(manifest.seed),
        u64s(until.0),
        u64s(trace_offset),
        u64s(counters.drops),
        u64s(counters.retransmits),
        u64s(counters.queue_peak),
        u64s(counters.schedule_past),
        json_str(source),
    ));
    out.push_str(&format!(
        "{{\"record\":\"engine\",\"now_ns\":{},\"events_processed\":{},\"next_seq\":{}}}\n",
        u64s(snap.now.0),
        u64s(snap.events_processed),
        u64s(snap.next_seq),
    ));
    for n in &snap.nodes {
        out.push_str(&format!(
            "{{\"record\":\"node\",\"id\":{},\"type\":{},\"rng\":{},\"state\":{}}}\n",
            u64s(n.id as u64),
            json_str(&n.type_name),
            json_str(&format!(
                "{},{},{},{}",
                n.rng[0], n.rng[1], n.rng[2], n.rng[3]
            )),
            json_str(&n.state),
        ));
    }
    for e in &snap.events {
        out.push_str(&format!(
            "{{\"record\":\"event\",\"t_ns\":{},\"seq\":{},\"dst\":{},\"msg\":{}}}\n",
            u64s(e.time.0),
            u64s(e.seq),
            u64s(e.dst as u64),
            json_str(&e.msg),
        ));
    }
    out
}

fn find<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Result<&'a Scalar, String> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str(pairs: &[(String, Scalar)], key: &str) -> Result<String, String> {
    match find(pairs, key)? {
        Scalar::Str(s) => Ok(s.clone()),
        other => Err(format!("field {key:?} is not a string: {other:?}")),
    }
}

/// Checkpoint `u64` fields are JSON strings (exact beyond 2^53).
fn get_u64(pairs: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    let raw = get_str(pairs, key)?;
    raw.parse()
        .map_err(|e| format!("field {key:?}={raw:?}: {e}"))
}

/// Parse one checkpoint file back into a [`CheckpointDoc`].
pub fn read_checkpoint(path: &Path) -> Result<CheckpointDoc, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = text.lines().enumerate();
    let parse = |i: usize, line: &str| {
        parse_flat_object(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
    };

    let (i, line) = lines.next().ok_or("empty checkpoint")?;
    let head = parse(i, line)?;
    let schema = get_str(&head, "schema")?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(format!(
            "{} is {schema:?}, not {CHECKPOINT_SCHEMA:?}",
            path.display()
        ));
    }
    let scenario = get_str(&head, "scenario")?;
    let config_hash = get_str(&head, "config_hash")?;

    let (i, line) = lines
        .next()
        .ok_or("checkpoint truncated before run record")?;
    let run = parse(i, line)?;
    if get_str(&run, "record")? != "run" {
        return Err("second checkpoint line must be the run record".into());
    }
    let kind = get_str(&run, "kind")?;
    let seed = get_u64(&run, "seed")?;
    let until_ns = get_u64(&run, "until_ns")?;
    let trace_offset = get_u64(&run, "trace_offset")?;
    let counters = RunCounters {
        drops: get_u64(&run, "drops")?,
        retransmits: get_u64(&run, "retransmits")?,
        queue_peak: get_u64(&run, "queue_peak")?,
        schedule_past: get_u64(&run, "schedule_past")?,
    };
    let source = get_str(&run, "source")?;

    let (i, line) = lines
        .next()
        .ok_or("checkpoint truncated before engine record")?;
    let eng = parse(i, line)?;
    if get_str(&eng, "record")? != "engine" {
        return Err("third checkpoint line must be the engine record".into());
    }
    let mut snap = EngineSnapshot {
        now: SimTime(get_u64(&eng, "now_ns")?),
        events_processed: get_u64(&eng, "events_processed")?,
        next_seq: get_u64(&eng, "next_seq")?,
        nodes: Vec::new(),
        events: Vec::new(),
    };
    for (i, line) in lines {
        let pairs = parse(i, line)?;
        match get_str(&pairs, "record")?.as_str() {
            "node" => {
                let rng_raw = get_str(&pairs, "rng")?;
                let words: Vec<u64> = rng_raw
                    .split(',')
                    .map(|t| t.parse().map_err(|e| format!("bad rng word {t:?}: {e}")))
                    .collect::<Result<_, String>>()?;
                let rng: [u64; 4] = words
                    .try_into()
                    .map_err(|_| format!("rng must have 4 words: {rng_raw:?}"))?;
                snap.nodes.push(NodeSnapshot {
                    id: get_u64(&pairs, "id")? as usize,
                    type_name: get_str(&pairs, "type")?,
                    rng,
                    state: get_str(&pairs, "state")?,
                });
            }
            "event" => snap.events.push(EventSnapshot {
                time: SimTime(get_u64(&pairs, "t_ns")?),
                seq: get_u64(&pairs, "seq")?,
                dst: get_u64(&pairs, "dst")? as usize,
                msg: get_str(&pairs, "msg")?,
            }),
            other => return Err(format!("unknown checkpoint record {other:?} on line {i}")),
        }
    }
    Ok(CheckpointDoc {
        scenario,
        seed,
        config_hash,
        kind,
        source,
        until_ns,
        trace_offset,
        counters,
        snap,
    })
}

/// Checkpoint file name: zero-padded `(now_ns, events)` so lexical order
/// is simulation order and the nearest-prior scan needs no file reads.
pub fn checkpoint_filename(snap: &EngineSnapshot) -> String {
    format!(
        "ckpt-{:020}-{:020}.jsonl",
        snap.now.0, snap.events_processed
    )
}

fn parse_filename_now_ns(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".jsonl")?;
    let (now, _events) = rest.split_once('-')?;
    now.parse().ok()
}

/// Find the checkpoint in `dir` with the greatest snapshot instant not
/// after `t_ns` — the natural restore point for replaying up to an event
/// at `t_ns`. Returns `None` when no checkpoint precedes it.
pub fn nearest_checkpoint(dir: &Path, t_ns: u64) -> Result<Option<PathBuf>, String> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(now_ns) = parse_filename_now_ns(name) else {
            continue;
        };
        if now_ns <= t_ns && best.as_ref().is_none_or(|(b, _)| now_ns > *b) {
            best = Some((now_ns, entry.path()));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Emits checkpoints at their cadence while driving the engine forward.
/// Owned by the run loop: `run_driver` calls [`CkptDriver::advance`]
/// instead of `run_until` so checkpoint instants land exactly on their
/// boundaries regardless of heartbeat slicing.
pub struct CkptDriver<'a> {
    every: CheckpointEvery,
    dir: PathBuf,
    manifest: Manifest,
    kind: &'static str,
    source: String,
    until: SimTime,
    trace_path: Option<PathBuf>,
    marker: &'a RunMarker,
    next_time_ns: Option<u64>,
    /// Checkpoint files written so far, in emission order.
    pub written: Vec<PathBuf>,
}

impl<'a> CkptDriver<'a> {
    /// Build a driver from the run options, or `None` when checkpointing
    /// was not requested. Errors on a half-configured request.
    pub fn from_opts(
        opts: &RunOptions,
        manifest: &Manifest,
        kind: &'static str,
        until: SimTime,
        marker: &'a RunMarker,
    ) -> Result<Option<Self>, String> {
        let (every, dir) = match (opts.checkpoint_every, &opts.checkpoint_dir) {
            (Some(e), Some(d)) => (e, d.clone()),
            (None, None) => return Ok(None),
            _ => {
                return Err(
                    "checkpointing needs both --checkpoint-every and --checkpoint-dir".into(),
                )
            }
        };
        if opts.checkpoint_source.is_empty() {
            return Err("checkpointing requires the original input text to embed; \
                 this entry point did not supply one"
                .into());
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        Ok(Some(CkptDriver {
            every,
            dir,
            manifest: manifest.clone(),
            kind,
            source: opts.checkpoint_source.clone(),
            until,
            trace_path: opts.trace.clone(),
            marker,
            next_time_ns: None,
            written: Vec::new(),
        }))
    }

    /// Drive the engine to `target`, emitting a checkpoint at every
    /// cadence boundary crossed on the way. Boundaries are absolute
    /// (multiples of the period since time zero / event zero), so a
    /// resumed run checkpoints at the identical instants the
    /// uninterrupted run would have.
    pub fn advance(&mut self, engine: &mut Engine<AtmMsg>, target: SimTime) -> Result<(), String> {
        match self.every {
            CheckpointEvery::SimSecs(secs) => {
                let step_ns = ((secs * 1e9).round() as u64).max(1);
                let mut next = self
                    .next_time_ns
                    .unwrap_or_else(|| (engine.now().0 / step_ns + 1) * step_ns);
                while next <= target.0 {
                    engine.run_until(SimTime(next));
                    self.emit(engine)?;
                    next += step_ns;
                }
                self.next_time_ns = Some(next);
                engine.run_until(target);
            }
            CheckpointEvery::Events(n) => loop {
                let done_so_far = engine.events_processed();
                let cap = (done_so_far / n + 1) * n - done_so_far;
                let done = engine.run_until_capped(target, cap);
                if done < cap {
                    break; // target reached before the next boundary
                }
                self.emit(engine)?;
            },
        }
        Ok(())
    }

    fn emit(&mut self, engine: &Engine<AtmMsg>) -> Result<(), String> {
        // The trace offset is only meaningful once every event up to this
        // instant has reached the file.
        phantom_sim::probe::flush_thread_probe();
        let trace_offset = match &self.trace_path {
            Some(p) => std::fs::metadata(p)
                .map_err(|e| format!("cannot stat trace {}: {e}", p.display()))?
                .len(),
            None => 0,
        };
        let snap = engine.snapshot()?;
        let counters = self.marker.so_far();
        let text = render_checkpoint(
            &self.manifest,
            self.kind,
            &self.source,
            self.until,
            trace_offset,
            &counters,
            &snap,
        );
        let path = self.dir.join(checkpoint_filename(&snap));
        write_atomic(&path, &text)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        self.written.push(path);
        Ok(())
    }
}

/// A topology rebuilt from a checkpoint's embedded source, ready for
/// [`Engine::restore`]. Carries whichever scenario-shaped leftovers the
/// finish path needs (report collection differs between kinds).
pub enum Rebuilt {
    /// A `phantom-scene/1` run.
    Scene {
        /// The parsed scene, boxed with the engine to keep the
        /// variants small.
        scene: Box<phantom_scene::Scene>,
        /// Freshly compiled engine (pre-restore), boxed to keep the
        /// variants near the same size.
        engine: Box<Engine<AtmMsg>>,
        /// Topology handles.
        net: phantom_atm::network::Network,
        /// The trunk the standard panels watch.
        bottleneck: phantom_atm::network::TrunkIdx,
        /// ABR session ids traced in the standard panels.
        traced: Vec<phantom_atm::network::SessionId>,
        /// Tail start (seconds) for whole-run aggregate metrics.
        tail_from_secs: f64,
    },
    /// A topology-DSL run.
    Topology {
        /// The parsed spec.
        spec: crate::spec::TopologySpec,
        /// Freshly built engine (pre-restore), boxed like `Scene`'s.
        engine: Box<Engine<AtmMsg>>,
        /// Topology handles.
        net: phantom_atm::network::Network,
    },
}

/// Rebuild the checkpoint's topology from its embedded source and verify
/// the config fingerprint — a checkpoint must never restore into a
/// topology other than its own.
pub fn rebuild(doc: &CheckpointDoc) -> Result<Rebuilt, String> {
    let verify = |config: &str| -> Result<(), String> {
        let hash = format!("{:016x}", fnv1a_64(config.as_bytes()));
        if hash != doc.config_hash {
            return Err(format!(
                "config mismatch: checkpoint was taken under {} but the embedded \
                 source rebuilds to {hash} — refusing to restore",
                doc.config_hash
            ));
        }
        Ok(())
    };
    match doc.kind.as_str() {
        KIND_SCENE => {
            let scene = parse_scene(&doc.source)?;
            verify(&scene.id)?;
            let CompiledScene {
                engine,
                net,
                until: _,
                bottleneck,
                traced,
                tail_from_secs,
            } = compile(&scene, doc.seed);
            Ok(Rebuilt::Scene {
                scene: Box::new(scene),
                engine: Box::new(engine),
                net,
                bottleneck,
                traced,
                tail_from_secs,
            })
        }
        KIND_TOPOLOGY => {
            let spec = crate::parse::parse_str(&doc.source).map_err(|e| e.to_string())?;
            verify(&format!("{spec:?}"))?;
            let (engine, net) = build_topology(&spec);
            Ok(Rebuilt::Topology {
                spec,
                engine: Box::new(engine),
                net,
            })
        }
        other => Err(format!("unknown checkpoint kind {other:?}")),
    }
}

/// What `phantom resume` hands back for printing and testing.
pub struct ResumeOutcome {
    /// The finished run's report, rendered exactly as the uninterrupted
    /// run would have rendered it.
    pub rendered: String,
    /// Total events processed, checkpoint prefix included.
    pub events: u64,
    /// Whole-run telemetry counters (checkpoint prefix + resumed suffix).
    pub counters: RunCounters,
}

/// Restore a checkpoint and run it to completion (or to `until_override`).
///
/// The suffix trace (`opts.trace`) is written *headerless*: concatenating
/// the uninterrupted trace's first `trace_offset` bytes with this file
/// reproduces the uninterrupted trace byte-for-byte. Checkpointing during
/// a resume works too (the cadence boundaries are absolute, so the
/// emitted files match the uninterrupted run's).
pub fn resume(
    ckpt: &Path,
    until_override: Option<SimTime>,
    opts: &RunOptions,
) -> Result<ResumeOutcome, String> {
    let doc = read_checkpoint(ckpt)?;
    let until = until_override.unwrap_or(SimTime(doc.until_ns));
    if until < doc.snap.now {
        return Err(format!(
            "--until {:?} precedes the checkpoint instant {:?}",
            until, doc.snap.now
        ));
    }

    // The artifact manifest must match the original run's, so flight
    // dumps and re-checkpoints carry the same provenance.
    let (manifest, rebuilt) = match rebuild(&doc)? {
        r @ Rebuilt::Scene { .. } => {
            let Rebuilt::Scene { ref scene, .. } = r else {
                unreachable!()
            };
            (
                Manifest::new(TRACE_SCHEMA, &scene.id, doc.seed, &scene.id),
                r,
            )
        }
        r @ Rebuilt::Topology { .. } => {
            let Rebuilt::Topology { ref spec, .. } = r else {
                unreachable!()
            };
            (
                Manifest::new(
                    METRICS_SCHEMA,
                    &doc.scenario,
                    doc.seed,
                    &format!("{spec:?}"),
                ),
                r,
            )
        }
    };

    // Checkpoint-during-resume inherits the original source verbatim.
    let mut opts = opts.clone();
    if opts.checkpoint_source.is_empty() {
        opts.checkpoint_source = doc.source.clone();
    }

    let (_flight_guard, flight_probe) = arm_flight(&opts, &manifest);
    let mut probes: Vec<Box<dyn Probe>> = Vec::new();
    if let Some(path) = &opts.trace {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create trace {}: {e}", path.display()))?;
        let probe = JsonlProbe::new(file);
        probes.push(if opts.trace_filter == KindSet::ALL {
            Box::new(probe)
        } else {
            Box::new(FilterProbe::new(opts.trace_filter, probe))
        });
    }
    if let Some(flight) = flight_probe {
        probes.push(flight);
    }
    let guard = install_probes(probes);
    let marker = telemetry::begin_run();
    telemetry::preload(&doc.counters);

    let outcome = match rebuilt {
        Rebuilt::Scene {
            scene,
            mut engine,
            net,
            bottleneck,
            traced,
            tail_from_secs,
        } => {
            engine.restore(&doc.snap)?;
            let mut ckpt_driver =
                CkptDriver::from_opts(&opts, &manifest, KIND_SCENE, until, &marker)?;
            run_driver(
                &mut engine,
                until,
                &opts,
                &scene.id,
                doc.seed,
                ckpt_driver.as_mut(),
            )?;
            drop(ckpt_driver);
            let (engine, _net, result) = run_standard(
                *engine,
                net,
                until,
                &scene.id,
                &scene.describe,
                "compiled from a phantom-scene/1 file",
                bottleneck,
                &traced,
                tail_from_secs,
            );
            let events = engine.events_processed();
            drop(guard);
            let counters = marker.finish();
            ResumeOutcome {
                rendered: result.render(0),
                events,
                counters,
            }
        }
        Rebuilt::Topology {
            spec,
            mut engine,
            net,
        } => {
            engine.restore(&doc.snap)?;
            let mut ckpt_driver =
                CkptDriver::from_opts(&opts, &manifest, KIND_TOPOLOGY, until, &marker)?;
            run_driver(
                &mut engine,
                until,
                &opts,
                &doc.scenario,
                doc.seed,
                ckpt_driver.as_mut(),
            )?;
            drop(ckpt_driver);
            drop(guard);
            let counters = marker.finish();
            let report = collect_report(&spec, &engine, &net, counters);
            ResumeOutcome {
                rendered: report.render(&spec),
                events: report.events,
                counters,
            }
        }
    };
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_round_trips_through_the_flat_parser() {
        let snap = EngineSnapshot {
            now: SimTime(123_456_789),
            events_processed: 42,
            next_seq: u64::MAX - 1, // exceeds 2^53: must survive as a string
            nodes: vec![NodeSnapshot {
                id: 0,
                type_name: "demo::Node<alloc::boxed::Box<dyn Thing>>".into(),
                rng: [u64::MAX, 1, 2, 3],
                state: "q=5 macr=13.64 name=a%20b%3Dc".into(),
            }],
            events: vec![EventSnapshot {
                time: SimTime(33_600_000_000), // beyond the wheel horizon
                seq: 7,
                dst: 0,
                msg: "Cell {\"x\"}".into(),
            }],
        };
        let counters = RunCounters {
            drops: 9,
            retransmits: 0,
            queue_peak: 1 << 60,
            schedule_past: 0,
        };
        let manifest = Manifest::new(CHECKPOINT_SCHEMA, "fig2", 1996, "fig2");
        let text = render_checkpoint(
            &manifest,
            KIND_SCENE,
            "{\"id\": \"fig2\",\n \"x\": 1}",
            SimTime(400_000_000),
            777,
            &counters,
            &snap,
        );

        let dir = std::env::temp_dir().join(format!("phantom-ckpt-rt-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(checkpoint_filename(&snap));
        std::fs::write(&path, &text).unwrap();
        let doc = read_checkpoint(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(doc.scenario, "fig2");
        assert_eq!(doc.seed, 1996);
        assert_eq!(doc.kind, KIND_SCENE);
        assert_eq!(doc.source, "{\"id\": \"fig2\",\n \"x\": 1}");
        assert_eq!(doc.until_ns, 400_000_000);
        assert_eq!(doc.trace_offset, 777);
        assert_eq!(doc.counters, counters);
        assert_eq!(doc.snap, snap);
    }

    #[test]
    fn filenames_sort_in_simulation_order_and_scan_finds_nearest_prior() {
        let dir = std::env::temp_dir().join(format!("phantom-ckpt-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |now: u64, ev: u64| {
            let snap = EngineSnapshot {
                now: SimTime(now),
                events_processed: ev,
                next_seq: 0,
                nodes: vec![],
                events: vec![],
            };
            let name = checkpoint_filename(&snap);
            std::fs::write(dir.join(&name), "").unwrap();
            name
        };
        let a = mk(50_000_000, 10);
        let b = mk(100_000_000, 20);
        let c = mk(2_000_000_000, 30);
        let mut sorted = vec![c.clone(), a.clone(), b.clone()];
        sorted.sort();
        assert_eq!(sorted, vec![a, b.clone(), c]);

        let hit = nearest_checkpoint(&dir, 150_000_000).unwrap().unwrap();
        assert_eq!(hit.file_name().unwrap().to_str().unwrap(), b);
        assert!(nearest_checkpoint(&dir, 10).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn half_configured_checkpointing_is_an_error() {
        let marker = telemetry::begin_run();
        let manifest = Manifest::new(CHECKPOINT_SCHEMA, "x", 1, "x");
        let opts = RunOptions {
            checkpoint_every: Some(CheckpointEvery::SimSecs(0.1)),
            ..RunOptions::default()
        };
        assert!(
            CkptDriver::from_opts(&opts, &manifest, KIND_SCENE, SimTime(1), &marker).is_err(),
            "--checkpoint-every without --checkpoint-dir"
        );
        let opts = RunOptions::default();
        assert!(
            CkptDriver::from_opts(&opts, &manifest, KIND_SCENE, SimTime(1), &marker)
                .unwrap()
                .is_none()
        );
    }
}
