//! The parsed topology description (pure data, validated).

use phantom_sim::{SimDuration, SimTime};

/// Traffic model of one session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficSpec {
    /// Always sending.
    Greedy,
    /// Active during `[start, stop)`.
    Window {
        /// First active instant.
        start: SimTime,
        /// End of activity.
        stop: SimTime,
    },
    /// Periodic bursts.
    OnOff {
        /// First active instant.
        start: SimTime,
        /// Active period.
        on: SimDuration,
        /// Silent period.
        off: SimDuration,
    },
    /// Stochastic bursts with exponential phase durations.
    Random {
        /// Mean active-phase duration.
        mean_on: SimDuration,
        /// Mean silent-phase duration.
        mean_off: SimDuration,
    },
}

/// One session line.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// Switch names along the forward path (≥ 2 entries... ≥ 1).
    pub path: Vec<String>,
    /// Traffic model.
    pub traffic: TrafficSpec,
    /// Access-link one-way propagation delay (the session's RTT knob).
    pub access_prop: SimDuration,
    /// `Some(mbps)` = an unresponsive CBR circuit at that rate instead of
    /// an ABR session.
    pub cbr_mbps: Option<f64>,
}

/// One trunk line.
#[derive(Clone, Debug, PartialEq)]
pub struct TrunkSpec {
    /// First endpoint (switch name).
    pub a: String,
    /// Second endpoint.
    pub b: String,
    /// Capacity, Mb/s.
    pub mbps: f64,
    /// One-way propagation delay.
    pub prop: SimDuration,
    /// Per-cell wire loss probability (failure injection).
    pub loss: f64,
}

/// Which algorithm runs on the trunk ports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlgorithmSpec {
    /// Phantom, explicit rate, with a utilization factor.
    Phantom {
        /// The `u` parameter (paper default 5).
        u: f64,
    },
    /// Phantom, binary NI/CI mode.
    PhantomNi,
    /// EPRCA.
    Eprca,
    /// APRC.
    Aprc,
    /// CAPC.
    Capc,
    /// ERICA (unbounded space).
    Erica,
    /// OSU load-factor scaling.
    Osu,
}

impl Default for AlgorithmSpec {
    fn default() -> Self {
        AlgorithmSpec::Phantom { u: 5.0 }
    }
}

/// The whole file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopologySpec {
    /// Declared switch names, in order.
    pub switches: Vec<String>,
    /// Trunk lines.
    pub trunks: Vec<TrunkSpec>,
    /// Session lines.
    pub sessions: Vec<SessionSpec>,
    /// The algorithm under test.
    pub algorithm: AlgorithmSpec,
    /// Serve CBR cells from strict-priority queues.
    pub cbr_priority: bool,
    /// Simulated duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl TopologySpec {
    /// Cross-reference validation (names resolve, paths are connected,
    /// something actually runs).
    // `!(x > 0)`-style checks are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if self.switches.is_empty() {
            return Err("no switches declared".into());
        }
        {
            let mut names = self.switches.clone();
            names.sort();
            names.dedup();
            if names.len() != self.switches.len() {
                return Err("duplicate switch name".into());
            }
        }
        let know = |n: &String| self.switches.contains(n);
        for t in &self.trunks {
            if !know(&t.a) || !know(&t.b) {
                return Err(format!("trunk references unknown switch: {} {}", t.a, t.b));
            }
            if t.a == t.b {
                return Err(format!("trunk from {} to itself", t.a));
            }
            if !(t.mbps > 0.0) {
                return Err("trunk capacity must be positive".into());
            }
            if !(0.0..1.0).contains(&t.loss) {
                return Err("trunk loss must be in [0, 1)".into());
            }
        }
        if self.sessions.is_empty() {
            return Err("no sessions declared".into());
        }
        for s in &self.sessions {
            if let Some(m) = s.cbr_mbps {
                if !(m > 0.0) {
                    return Err("cbr rate must be positive".into());
                }
            }
            if s.path.len() < 2 {
                return Err("session path needs at least two switches".into());
            }
            for n in &s.path {
                if !know(n) {
                    return Err(format!("session references unknown switch: {n}"));
                }
            }
            for w in s.path.windows(2) {
                let connected = self
                    .trunks
                    .iter()
                    .any(|t| (t.a == w[0] && t.b == w[1]) || (t.a == w[1] && t.b == w[0]));
                if !connected {
                    return Err(format!("no trunk between {} and {}", w[0], w[1]));
                }
            }
        }
        if self.duration.is_zero() {
            return Err("run duration must be positive".into());
        }
        Ok(())
    }

    /// Index of a switch by name (after validation).
    pub fn switch_index(&self, name: &str) -> usize {
        self.switches
            .iter()
            .position(|n| n == name)
            .expect("validated name")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> TopologySpec {
        TopologySpec {
            switches: vec!["a".into(), "b".into()],
            trunks: vec![TrunkSpec {
                a: "a".into(),
                b: "b".into(),
                mbps: 150.0,
                prop: SimDuration::from_micros(10),
                loss: 0.0,
            }],
            sessions: vec![SessionSpec {
                path: vec!["a".into(), "b".into()],
                traffic: TrafficSpec::Greedy,
                access_prop: SimDuration::from_micros(10),
                cbr_mbps: None,
            }],
            algorithm: AlgorithmSpec::default(),
            cbr_priority: false,
            duration: SimDuration::from_millis(100),
            seed: 1,
        }
    }

    #[test]
    fn minimal_topology_validates() {
        assert!(minimal().validate().is_ok());
    }

    #[test]
    fn unknown_switch_in_trunk_rejected() {
        let mut t = minimal();
        t.trunks[0].b = "zzz".into();
        assert!(t.validate().unwrap_err().contains("unknown switch"));
    }

    #[test]
    fn disconnected_session_rejected() {
        let mut t = minimal();
        t.switches.push("c".into());
        t.sessions[0].path = vec!["a".into(), "c".into()];
        assert!(t.validate().unwrap_err().contains("no trunk"));
    }

    #[test]
    fn duplicate_switch_rejected() {
        let mut t = minimal();
        t.switches.push("a".into());
        assert!(t.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn empty_pieces_rejected() {
        let mut t = minimal();
        t.sessions.clear();
        assert!(t.validate().is_err());
        let mut t = minimal();
        t.duration = SimDuration::ZERO;
        assert!(t.validate().is_err());
    }
}
