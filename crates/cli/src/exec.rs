//! Execute a parsed topology: simulate it, or compute the closed-form
//! phantom prediction.

use crate::spec::{AlgorithmSpec, TopologySpec, TrafficSpec};
use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::{NetworkBuilder, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::Traffic;
use phantom_baselines::{Aprc, Capc, Eprca, Erica, Osu};
use phantom_core::{PhantomAllocator, PhantomConfig, PhantomNi};
use phantom_metrics::fairness::Session;
use phantom_metrics::{jain_index, phantom_prediction, Table};
use phantom_sim::{Engine, SimTime};
use std::fmt::Write as _;

/// Results of one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-session mean delivered rate over the tail half of the run, Mb/s.
    pub session_rates_mbps: Vec<f64>,
    /// Per-trunk (a→b direction) MACR tail mean, Mb/s.
    pub trunk_macr_mbps: Vec<f64>,
    /// Per-trunk utilization over the tail.
    pub trunk_utilization: Vec<f64>,
    /// Per-trunk mean queue (cells) over the tail.
    pub trunk_mean_queue: Vec<f64>,
    /// Per-trunk peak queue (cells).
    pub trunk_peak_queue: Vec<usize>,
    /// Jain index of the session rates.
    pub jain: f64,
    /// Events the engine dispatched.
    pub events: u64,
}

impl RunReport {
    /// Terminal rendering.
    pub fn render(&self, spec: &TopologySpec) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} under {:?} (seed {}) — {} events",
            spec.duration, spec.algorithm, spec.seed, self.events
        );
        for (i, r) in self.session_rates_mbps.iter().enumerate() {
            let path = spec.sessions[i].path.join("→");
            let _ = writeln!(out, "  session {i} [{path}]: {r:8.2} Mb/s");
        }
        let _ = writeln!(out, "  jain index: {:.4}", self.jain);
        for (i, t) in spec.trunks.iter().enumerate() {
            let _ = writeln!(
                out,
                "  trunk {}–{}: macr {:6.2} Mb/s, util {:5.3}, queue mean {:6.1} / peak {} cells",
                t.a,
                t.b,
                self.trunk_macr_mbps[i],
                self.trunk_utilization[i],
                self.trunk_mean_queue[i],
                self.trunk_peak_queue[i]
            );
        }
        out
    }
}

fn allocator_for(alg: AlgorithmSpec) -> Box<dyn RateAllocator> {
    match alg {
        AlgorithmSpec::Phantom { u } => Box::new(PhantomAllocator::new(
            PhantomConfig::paper().with_utilization_factor(u),
        )),
        AlgorithmSpec::PhantomNi => Box::new(PhantomNi::paper()),
        AlgorithmSpec::Eprca => Box::new(Eprca::recommended()),
        AlgorithmSpec::Aprc => Box::new(Aprc::recommended()),
        AlgorithmSpec::Capc => Box::new(Capc::recommended()),
        AlgorithmSpec::Erica => Box::new(Erica::recommended()),
        AlgorithmSpec::Osu => Box::new(Osu::recommended()),
    }
}

fn traffic_for(t: TrafficSpec) -> Traffic {
    match t {
        TrafficSpec::Greedy => Traffic::greedy(),
        TrafficSpec::Window { start, stop } => Traffic::window(start, stop),
        TrafficSpec::OnOff { start, on, off } => Traffic::on_off(start, on, off),
        TrafficSpec::Random { mean_on, mean_off } => Traffic::random(mean_on, mean_off),
    }
}

/// Simulate the topology and collect the report.
pub fn run_spec(spec: &TopologySpec) -> Result<RunReport, String> {
    spec.validate()?;
    let mut b = NetworkBuilder::new().cbr_priority(spec.cbr_priority);
    let switches: Vec<_> = spec.switches.iter().map(|n| b.switch(n)).collect();
    for t in &spec.trunks {
        b.trunk(
            switches[spec.switch_index(&t.a)],
            switches[spec.switch_index(&t.b)],
            t.mbps,
            t.prop,
        );
        if t.loss > 0.0 {
            b.last_trunk_loss(t.loss);
        }
    }
    for s in &spec.sessions {
        let path: Vec<_> = s
            .path
            .iter()
            .map(|n| switches[spec.switch_index(n)])
            .collect();
        match s.cbr_mbps {
            Some(mbps) => {
                b.cbr_session(&path, mbps, traffic_for(s.traffic));
            }
            None => {
                b.session(&path, traffic_for(s.traffic));
            }
        }
        b.last_session_access_prop(s.access_prop);
    }
    let mut engine = Engine::new(spec.seed);
    let alg = spec.algorithm;
    let net = b.build(&mut engine, &mut || allocator_for(alg));
    engine.run_until(SimTime::ZERO + spec.duration);

    let tail = spec.duration.as_secs_f64() / 2.0;
    let session_rates_mbps: Vec<f64> = (0..spec.sessions.len())
        .map(|i| cps_to_mbps(net.session_rate(&engine, i).mean_after(tail)))
        .collect();
    let mut trunk_macr_mbps = Vec::new();
    let mut trunk_utilization = Vec::new();
    let mut trunk_mean_queue = Vec::new();
    let mut trunk_peak_queue = Vec::new();
    for i in 0..spec.trunks.len() {
        let t = TrunkIdx(i);
        trunk_macr_mbps.push(cps_to_mbps(net.trunk_macr(&engine, t).mean_after(tail)));
        let port = net.trunk_port(&engine, t);
        trunk_utilization.push(net.trunk_throughput(&engine, t).mean_after(tail) / port.capacity());
        trunk_mean_queue.push(net.trunk_queue(&engine, t).mean_after(tail));
        trunk_peak_queue.push(port.queue_high_water());
    }
    let jain = jain_index(&session_rates_mbps);
    Ok(RunReport {
        session_rates_mbps,
        trunk_macr_mbps,
        trunk_utilization,
        trunk_mean_queue,
        trunk_peak_queue,
        jain,
        events: engine.events_processed(),
    })
}

/// Closed-form phantom prediction for the topology (ignores traffic
/// windows — every session is treated as greedy — and non-Phantom
/// algorithm lines; the CLI warns accordingly).
pub fn predict(spec: &TopologySpec) -> Result<String, String> {
    spec.validate()?;
    let u = match spec.algorithm {
        AlgorithmSpec::Phantom { u } => u,
        _ => 5.0,
    };
    let caps: Vec<f64> = spec
        .trunks
        .iter()
        .map(|t| phantom_atm::units::mbps_to_cps(t.mbps))
        .collect();
    let trunk_of = |a: &str, b: &str| -> usize {
        spec.trunks
            .iter()
            .position(|t| (t.a == a && t.b == b) || (t.a == b && t.b == a))
            .expect("validated connectivity")
    };
    let sessions: Vec<Session> = spec
        .sessions
        .iter()
        .map(|s| {
            let links = s.path.windows(2).map(|w| trunk_of(&w[0], &w[1])).collect();
            Session::on(links)
        })
        .collect();
    let (rates, macrs) = phantom_prediction(&caps, &sessions, u);
    let mut out = String::new();
    let _ = writeln!(out, "phantom fixed point (u = {u}, all sessions greedy):");
    for (i, r) in rates.iter().enumerate() {
        let path = spec.sessions[i].path.join("→");
        let _ = writeln!(out, "  session {i} [{path}]: {:8.2} Mb/s", cps_to_mbps(*r));
    }
    for (i, m) in macrs.iter().enumerate() {
        let t = &spec.trunks[i];
        let _ = writeln!(
            out,
            "  trunk {}–{}: MACR {:6.2} Mb/s",
            t.a,
            t.b,
            cps_to_mbps(*m)
        );
    }
    Ok(out)
}

/// Run many independent topology specs, fanning across up to `jobs`
/// worker threads (plain `std::thread::scope`, no pool dependency).
/// Each run is a pure function of its spec — including the seed — so the
/// results, returned in input order, are identical to a serial run.
fn run_specs(specs: &[TopologySpec], jobs: usize) -> Result<Vec<RunReport>, String> {
    let workers = jobs.max(1).min(specs.len());
    if workers <= 1 {
        return specs.iter().map(run_spec).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<RunReport, String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        local.push((i, run_spec(spec)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("run_specs worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

fn summary_row(report: &RunReport) -> Vec<f64> {
    let total: f64 = report.session_rates_mbps.iter().sum();
    let util = report.trunk_utilization.iter().copied().fold(0.0, f64::max);
    let max_q = report.trunk_peak_queue.iter().copied().max().unwrap_or(0) as f64;
    vec![total, report.jain, util, max_q]
}

/// Run the topology under every implemented algorithm and tabulate the
/// headline quantities. `jobs` bounds the worker threads; the table is
/// the same at any parallelism.
pub fn compare_algorithms(spec: &TopologySpec, jobs: usize) -> Result<Table, String> {
    spec.validate()?;
    let algorithms = [
        (AlgorithmSpec::Phantom { u: 5.0 }, "phantom"),
        (AlgorithmSpec::PhantomNi, "phantom-ni"),
        (AlgorithmSpec::Eprca, "eprca"),
        (AlgorithmSpec::Aprc, "aprc"),
        (AlgorithmSpec::Capc, "capc"),
        (AlgorithmSpec::Osu, "osu"),
        (AlgorithmSpec::Erica, "erica"),
    ];
    let specs: Vec<TopologySpec> = algorithms
        .iter()
        .map(|(alg, _)| {
            let mut s2 = spec.clone();
            s2.algorithm = *alg;
            s2
        })
        .collect();
    let reports = run_specs(&specs, jobs)?;
    let mut t = Table::new(
        "compare",
        "all algorithms on this topology",
        &[
            "algorithm",
            "total_mbps",
            "jain",
            "bottleneck_util",
            "max_q_cells",
        ],
    );
    for ((_, label), report) in algorithms.iter().zip(&reports) {
        t.add_row(label, summary_row(report));
    }
    Ok(t)
}

/// Sweep the Phantom utilization factor over the topology: one row per
/// `u`, columns for total throughput, fairness, utilization and queueing.
/// `jobs` bounds the worker threads; the table is the same at any
/// parallelism.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
pub fn sweep_u(spec: &TopologySpec, us: &[f64], jobs: usize) -> Result<Table, String> {
    spec.validate()?;
    for &u in us {
        if !(u > 0.0) {
            return Err(format!("u must be positive, got {u}"));
        }
    }
    let specs: Vec<TopologySpec> = us
        .iter()
        .map(|&u| {
            let mut s2 = spec.clone();
            s2.algorithm = AlgorithmSpec::Phantom { u };
            s2
        })
        .collect();
    let reports = run_specs(&specs, jobs)?;
    let mut t = Table::new(
        "sweep-u",
        "utilization-factor sweep",
        &["u", "total_mbps", "jain", "bottleneck_util", "max_q_cells"],
    );
    for (&u, report) in us.iter().zip(&reports) {
        t.add_row(&format!("{u}"), summary_row(report));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;

    const DUMBBELL: &str = "\
switch s1
switch s2
trunk s1 s2 150mbps 10us
session s1 s2 greedy
session s1 s2 greedy
algorithm phantom u=5
run 400ms seed=3
";

    #[test]
    fn run_matches_prediction_on_the_dumbbell() {
        let spec = parse_str(DUMBBELL).unwrap();
        let report = run_spec(&spec).unwrap();
        assert_eq!(report.session_rates_mbps.len(), 2);
        // fixed point: 68.18 Mb/s per session, MACR 13.64
        for r in &report.session_rates_mbps {
            assert!((r - 68.18).abs() < 5.0, "rate {r}");
        }
        assert!((report.trunk_macr_mbps[0] - 13.64).abs() < 1.5);
        assert!(report.jain > 0.99);
        assert!(report.events > 100_000);
        let rendered = report.render(&spec);
        assert!(rendered.contains("session 0"));
        assert!(rendered.contains("trunk s1–s2"));
    }

    #[test]
    fn predict_without_simulation() {
        let spec = parse_str(DUMBBELL).unwrap();
        let text = predict(&spec).unwrap();
        assert!(text.contains("68.18"));
        assert!(text.contains("13.64"));
    }

    #[test]
    fn sweep_u_shows_the_utilization_dial() {
        let spec = parse_str(DUMBBELL).unwrap();
        let t = sweep_u(&spec, &[2.0, 5.0, 20.0], 1).unwrap();
        let u2 = t.cell("2", "bottleneck_util").unwrap();
        let u20 = t.cell("20", "bottleneck_util").unwrap();
        assert!(u20 > u2, "higher u buys utilization: {u2:.3} vs {u20:.3}");
        assert!((u2 - 0.80).abs() < 0.05, "u=2 with n=2 targets 4/5");
        assert!(t.cell("5", "jain").unwrap() > 0.99);
        assert!(sweep_u(&spec, &[0.0], 1).is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let spec = parse_str(DUMBBELL).unwrap();
        let serial = sweep_u(&spec, &[2.0, 5.0], 1).unwrap();
        let parallel = sweep_u(&spec, &[2.0, 5.0], 4).unwrap();
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn every_algorithm_runs() {
        for alg in ["phantom-ni", "eprca", "aprc", "capc", "erica", "osu"] {
            let src = DUMBBELL.replace("phantom u=5", alg);
            let spec = parse_str(&src).unwrap();
            let report = run_spec(&spec).unwrap();
            let total: f64 = report.session_rates_mbps.iter().sum();
            assert!(total > 60.0, "{alg} collapsed: {total:.1} Mb/s");
        }
    }
}
