//! Execute a parsed topology: simulate it, or compute the closed-form
//! phantom prediction.

use crate::spec::{AlgorithmSpec, TopologySpec, TrafficSpec};
use phantom_atm::allocator::RateAllocator;
use phantom_atm::network::{NetworkBuilder, SessionId, TrunkIdx};
use phantom_atm::units::cps_to_mbps;
use phantom_atm::Traffic;
use phantom_baselines::{Aprc, Capc, Eprca, Erica, Osu};
use phantom_core::{PhantomAllocator, PhantomConfig, PhantomNi};
use phantom_metrics::fairness::Session;
use phantom_metrics::manifest::{
    Manifest, METRICS_SCHEMA, POSTMORTEM_SCHEMA, PROFILE_SCHEMA, TRACE_SCHEMA,
};
use phantom_metrics::{jain_index, phantom_prediction, ProfileRecord, Registry, RunStatus, Table};
use phantom_sim::flight::{self, FlightProbe};
use phantom_sim::probe::{FilterProbe, JsonlProbe, KindSet, Probe, ProbeGuard, TeeProbe};
use phantom_sim::telemetry::{self, RunCounters};
use phantom_sim::{profile, Engine, SimDuration, SimTime};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Results of one simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// Per-session mean delivered rate over the tail half of the run, Mb/s.
    pub session_rates_mbps: Vec<f64>,
    /// Per-trunk (a→b direction) MACR tail mean, Mb/s.
    pub trunk_macr_mbps: Vec<f64>,
    /// Per-trunk utilization over the tail.
    pub trunk_utilization: Vec<f64>,
    /// Per-trunk mean queue (cells) over the tail.
    pub trunk_mean_queue: Vec<f64>,
    /// Per-trunk peak queue (cells).
    pub trunk_peak_queue: Vec<usize>,
    /// Jain index of the session rates.
    pub jain: f64,
    /// Events the engine dispatched.
    pub events: u64,
    /// Drop/retransmit/queue-peak telemetry observed during the run.
    pub counters: RunCounters,
}

/// Observability options for [`run_spec_opts`]. The defaults reproduce
/// the plain [`run_spec`] behaviour: no trace, no metrics, quiet.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Write a JSONL event trace (manifest first line) to this path.
    pub trace: Option<PathBuf>,
    /// Event kinds to keep in the trace (default: all).
    pub trace_filter: KindSet,
    /// Write a Prometheus-style metrics snapshot to this path, plus a
    /// JSON summary to the same path with `.json` appended.
    pub metrics: Option<PathBuf>,
    /// Print a progress heartbeat to stderr (events/s, sim/wall ratio,
    /// ETA, RSS) after each run slice.
    pub verbose: bool,
    /// Write a `phantom-profile/1` engine profile (where the wall time
    /// went: node types, event kinds, calendar phases) to this path.
    pub profile: Option<PathBuf>,
    /// Atomically rewrite a `phantom-status/1` liveness file here after
    /// each run slice; `phantom status FILE [--watch]` pretty-prints it.
    pub status_file: Option<PathBuf>,
    /// Arm the panic flight recorder: on panic, a `phantom-postmortem/1`
    /// dump (engine snapshot + recent-event ring) lands at this path.
    pub post_mortem: Option<PathBuf>,
    /// Ring depth of the flight recorder (`--post-mortem-depth`): how
    /// many recent events a post-mortem dump retains. `None` keeps the
    /// default ([`flight::DEFAULT_RING_CAP`]).
    pub post_mortem_depth: Option<usize>,
    /// Heartbeat interval in *simulated* seconds (`--heartbeat`): how
    /// often the `-v` stderr line and the status file are refreshed.
    /// `None` keeps the historical default of ten slices per run.
    pub heartbeat_secs: Option<f64>,
    /// Emit a `phantom-checkpoint/1` artifact this often (sim-seconds,
    /// or every N dispatched events with an `ev` suffix). Requires
    /// [`RunOptions::checkpoint_dir`] and [`RunOptions::checkpoint_source`].
    pub checkpoint_every: Option<CheckpointEvery>,
    /// Directory receiving periodic checkpoints, named
    /// `ckpt-<now_ns>-<events>.jsonl` (zero-padded, so lexical order is
    /// simulation order).
    pub checkpoint_dir: Option<PathBuf>,
    /// The original input text (scene JSON or topology DSL) embedded in
    /// each checkpoint so `phantom resume` can rebuild the topology.
    /// Must be non-empty when checkpointing is requested.
    pub checkpoint_source: String,
    /// Scenario name recorded in artifact manifests (e.g. the topology
    /// file path); empty means `"cli"`.
    pub scenario: String,
    /// Intra-run shard count (`--shards`): run the engine on this many
    /// conservative PDES shards. 0 (the default) keeps the serial
    /// engine. Incompatible with checkpointing for now — checkpoints
    /// would have to land exactly on epoch barriers to stay
    /// well-defined, so the combination is rejected up front.
    pub shards: usize,
}

/// Checkpoint cadence: a simulated-time period, or an event-count period
/// (`--checkpoint-every 0.05` vs `--checkpoint-every 250000ev`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CheckpointEvery {
    /// Checkpoint at every multiple of this many simulated seconds.
    SimSecs(f64),
    /// Checkpoint at every multiple of this many dispatched events.
    Events(u64),
}

impl CheckpointEvery {
    /// Parse the `--checkpoint-every` argument: a positive float means
    /// sim-seconds, a positive integer with an `ev` suffix means events.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(n) = s.strip_suffix("ev") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad checkpoint event count: {s}"))?;
            if n == 0 {
                return Err("checkpoint event period must be positive".into());
            }
            Ok(CheckpointEvery::Events(n))
        } else {
            let secs: f64 = s
                .parse()
                .map_err(|_| format!("bad checkpoint period (sim-secs or Nev): {s}"))?;
            // NaN fails the comparison too, so it is rejected here.
            if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("checkpoint period must be positive: {s}"));
            }
            Ok(CheckpointEvery::SimSecs(secs))
        }
    }
}

impl RunReport {
    /// Terminal rendering.
    pub fn render(&self, spec: &TopologySpec) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated {} under {:?} (seed {}) — {} events",
            spec.duration, spec.algorithm, spec.seed, self.events
        );
        for (i, r) in self.session_rates_mbps.iter().enumerate() {
            let path = spec.sessions[i].path.join("→");
            let _ = writeln!(out, "  session {i} [{path}]: {r:8.2} Mb/s");
        }
        let _ = writeln!(out, "  jain index: {:.4}", self.jain);
        let _ = writeln!(
            out,
            "  telemetry: {} drops, peak queue {} cells",
            self.counters.drops, self.counters.queue_peak
        );
        for (i, t) in spec.trunks.iter().enumerate() {
            let _ = writeln!(
                out,
                "  trunk {}–{}: macr {:6.2} Mb/s, util {:5.3}, queue mean {:6.1} / peak {} cells",
                t.a,
                t.b,
                self.trunk_macr_mbps[i],
                self.trunk_utilization[i],
                self.trunk_mean_queue[i],
                self.trunk_peak_queue[i]
            );
        }
        out
    }
}

fn allocator_for(alg: AlgorithmSpec) -> Box<dyn RateAllocator> {
    match alg {
        AlgorithmSpec::Phantom { u } => Box::new(PhantomAllocator::new(
            PhantomConfig::paper().with_utilization_factor(u),
        )),
        AlgorithmSpec::PhantomNi => Box::new(PhantomNi::paper()),
        AlgorithmSpec::Eprca => Box::new(Eprca::recommended()),
        AlgorithmSpec::Aprc => Box::new(Aprc::recommended()),
        AlgorithmSpec::Capc => Box::new(Capc::recommended()),
        AlgorithmSpec::Erica => Box::new(Erica::recommended()),
        AlgorithmSpec::Osu => Box::new(Osu::recommended()),
    }
}

fn traffic_for(t: TrafficSpec) -> Traffic {
    match t {
        TrafficSpec::Greedy => Traffic::greedy(),
        TrafficSpec::Window { start, stop } => Traffic::window(start, stop),
        TrafficSpec::OnOff { start, on, off } => Traffic::on_off(start, on, off),
        TrafficSpec::Random { mean_on, mean_off } => Traffic::random(mean_on, mean_off),
    }
}

/// Simulate the topology and collect the report.
pub fn run_spec(spec: &TopologySpec) -> Result<RunReport, String> {
    run_spec_opts(spec, &RunOptions::default())
}

/// Build the JSONL trace probe, if requested. Unlike the sweep
/// harness, a CLI user asked for this file explicitly, so failures are
/// hard errors rather than silent no-ops.
pub(crate) fn trace_probe(
    opts: &RunOptions,
    manifest: &Manifest,
) -> Result<Option<Box<dyn Probe>>, String> {
    let Some(path) = &opts.trace else {
        return Ok(None);
    };
    ensure_parent(path)?;
    let file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create trace {}: {e}", path.display()))?;
    let manifest_json = manifest.for_schema(TRACE_SCHEMA).to_json();
    let probe = JsonlProbe::with_manifest(file, &manifest_json)
        .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
    Ok(Some(if opts.trace_filter == KindSet::ALL {
        Box::new(probe)
    } else {
        Box::new(FilterProbe::new(opts.trace_filter, probe))
    }))
}

/// Install every requested probe for a run: any subset of {trace,
/// analysis tap, flight ring} composes through one [`TeeProbe`].
pub(crate) fn install_probes(mut probes: Vec<Box<dyn Probe>>) -> Option<ProbeGuard> {
    match probes.len() {
        0 => None,
        1 => Some(ProbeGuard::install(probes.pop().expect("len checked"))),
        _ => Some(ProbeGuard::install(Box::new(
            probes.into_iter().fold(TeeProbe::new(), TeeProbe::and),
        ))),
    }
}

/// Arm the panic flight recorder when `opts.post_mortem` asks for it,
/// returning the disarm guard and the ring-feeding probe to tee into
/// the run's probe chain. The dump's first line is the run manifest
/// re-stamped with the post-mortem schema.
pub(crate) fn arm_flight(
    opts: &RunOptions,
    manifest: &Manifest,
) -> (Option<flight::FlightGuard>, Option<Box<dyn Probe>>) {
    match &opts.post_mortem {
        Some(path) => {
            let manifest_json = manifest.for_schema(POSTMORTEM_SCHEMA).to_json();
            let depth = opts.post_mortem_depth.unwrap_or(flight::DEFAULT_RING_CAP);
            let guard = flight::arm(path, Some(&manifest_json), depth);
            (Some(guard), Some(Box::new(FlightProbe)))
        }
        None => (None, None),
    }
}

/// Write the `phantom-profile/1` artifact for a finished profile
/// bracket. A CLI user asked for this file explicitly, so failures are
/// hard errors (unlike the sweep harness, which degrades silently).
pub(crate) fn write_profile(
    path: &Path,
    manifest: &Manifest,
    wall_secs: f64,
    report: phantom_sim::ProfileReport,
) -> Result<(), String> {
    let record = ProfileRecord {
        manifest: manifest.for_schema(PROFILE_SCHEMA),
        wall_secs,
        report,
    };
    record
        .write(path)
        .map_err(|e| format!("cannot write profile {}: {e}", path.display()))
}

fn ensure_parent(path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    Ok(())
}

/// Write the Prometheus-style snapshot to `path` and the JSON summary
/// to `path` with `.json` appended.
pub(crate) fn write_metrics(
    path: &Path,
    registry: &Registry,
    manifest: &Manifest,
) -> Result<(), String> {
    ensure_parent(path)?;
    std::fs::write(path, registry.to_prometheus(manifest))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let mut json_os = path.as_os_str().to_os_string();
    json_os.push(".json");
    let json_path = PathBuf::from(json_os);
    std::fs::write(&json_path, registry.to_json(manifest))
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    Ok(())
}

/// Drive the engine to `end` in heartbeat-sized slices, emitting the
/// requested liveness signals after each: a stderr heartbeat line
/// (percent done, events/s, sim/wall ratio, ETA, RSS) when `verbose`,
/// and an atomic `phantom-status/1` rewrite when `--status-file` names a
/// file (final write has `state: "done"`). The slice width is
/// [`RunOptions::heartbeat_secs`] of simulated time (default: a tenth of
/// the remaining horizon). When a checkpoint driver is supplied, every
/// slice advances through it so `phantom-checkpoint/1` artifacts land at
/// their exact cadence. Slicing `run_until` cannot change results — the
/// event order within each slice is exactly the order of one
/// uninterrupted run. Starts from the engine's current clock, so resumed
/// runs report progress over the remaining horizon only.
pub(crate) fn run_driver(
    engine: &mut Engine<phantom_atm::AtmMsg>,
    end: SimTime,
    opts: &RunOptions,
    scenario: &str,
    seed: u64,
    mut ckpt: Option<&mut crate::checkpoint::CkptDriver<'_>>,
) -> Result<(), String> {
    let from = engine.now();
    let total = (end - from).as_secs_f64();
    let liveness = opts.verbose || opts.status_file.is_some();
    let slices: u64 = if liveness && total > 0.0 {
        let hb = opts.heartbeat_secs.unwrap_or(total / 10.0);
        // Bound the slice count so a tiny heartbeat over a long horizon
        // cannot turn the run into pure bookkeeping.
        ((total / hb.max(1e-9)).ceil() as u64).clamp(1, 100_000)
    } else {
        1
    };
    let wall_start = std::time::Instant::now();
    let events_before = engine.events_processed();
    for i in 1..=slices {
        let target = if i == slices {
            end
        } else {
            from + SimDuration::from_secs_f64(total * i as f64 / slices as f64)
        };
        match ckpt.as_deref_mut() {
            Some(ck) => ck.advance(engine, target)?,
            None => engine.run_until(target),
        }
        if !liveness {
            continue;
        }
        let wall = wall_start.elapsed().as_secs_f64().max(1e-9);
        let sim = (target - SimTime::ZERO).as_secs_f64();
        let events = engine.events_processed() - events_before;
        let eta = (i < slices).then(|| wall / i as f64 * (slices - i) as f64);
        let rss = telemetry::rss_bytes();
        if opts.verbose {
            eprintln!(
                "[{:3}%] sim {:.3}s  wall {:.2}s  {:.0} events/s  sim/wall {:.2}x  eta {}  rss {}",
                i * 100 / slices,
                sim,
                wall,
                events as f64 / wall,
                (sim - (from - SimTime::ZERO).as_secs_f64()) / wall,
                eta.map_or_else(|| "--".to_string(), |e| format!("{e:.1}s")),
                rss.map_or_else(
                    || "n/a".to_string(),
                    |b| format!("{:.0} MB", b as f64 / 1e6)
                ),
            );
        }
        if let Some(path) = opts.status_file.as_deref() {
            let st = RunStatus {
                scenario: scenario.to_string(),
                seed,
                state: if i == slices { "done" } else { "running" }.to_string(),
                wall_secs: wall,
                events,
                events_per_sec: events as f64 / wall,
                done: i,
                total: slices,
                unit: "slices".to_string(),
                eta_secs: eta,
                rss_bytes: rss,
                sim_secs: Some(sim),
                sim_end_secs: Some((end - SimTime::ZERO).as_secs_f64()),
            };
            st.write(path)
                .map_err(|e| format!("cannot write status {}: {e}", path.display()))?;
        }
    }
    Ok(())
}

/// Build the simulated network for a validated topology spec: a fresh
/// engine seeded from the spec and the wired [`Network`] handle. Shared
/// by [`run_spec_opts`] and `phantom resume`, which must reconstruct the
/// topology identically before restoring checkpointed dynamics into it.
pub(crate) fn build_topology(
    spec: &TopologySpec,
) -> (Engine<phantom_atm::AtmMsg>, phantom_atm::network::Network) {
    let mut b = NetworkBuilder::new().cbr_priority(spec.cbr_priority);
    let switches: Vec<_> = spec.switches.iter().map(|n| b.switch(n)).collect();
    for t in &spec.trunks {
        b.trunk(
            switches[spec.switch_index(&t.a)],
            switches[spec.switch_index(&t.b)],
            t.mbps,
            t.prop,
        );
        if t.loss > 0.0 {
            b.last_trunk_loss(t.loss);
        }
    }
    for s in &spec.sessions {
        let path: Vec<_> = s
            .path
            .iter()
            .map(|n| switches[spec.switch_index(n)])
            .collect();
        match s.cbr_mbps {
            Some(mbps) => {
                b.cbr_session(&path, mbps, traffic_for(s.traffic));
            }
            None => {
                b.session(&path, traffic_for(s.traffic));
            }
        }
        b.last_session_access_prop(s.access_prop);
    }
    let mut engine = Engine::new(spec.seed);
    let alg = spec.algorithm;
    let net = b.build(&mut engine, &mut || allocator_for(alg));
    (engine, net)
}

/// Collect the tail-window report of a finished topology run. Shared by
/// [`run_spec_opts`] and `phantom resume`, so a resumed run renders the
/// byte-identical report of its uninterrupted twin.
pub(crate) fn collect_report(
    spec: &TopologySpec,
    engine: &Engine<phantom_atm::AtmMsg>,
    net: &phantom_atm::network::Network,
    counters: RunCounters,
) -> RunReport {
    let tail = spec.duration.as_secs_f64() / 2.0;
    let session_rates_mbps: Vec<f64> = (0..spec.sessions.len())
        .map(|i| cps_to_mbps(net.session_rate(engine, SessionId(i)).mean_after(tail)))
        .collect();
    let mut trunk_macr_mbps = Vec::new();
    let mut trunk_utilization = Vec::new();
    let mut trunk_mean_queue = Vec::new();
    let mut trunk_peak_queue = Vec::new();
    for i in 0..spec.trunks.len() {
        let t = TrunkIdx(i);
        trunk_macr_mbps.push(cps_to_mbps(net.trunk_macr(engine, t).mean_after(tail)));
        let port = net.trunk_port(engine, t);
        trunk_utilization.push(net.trunk_throughput(engine, t).mean_after(tail) / port.capacity());
        trunk_mean_queue.push(net.trunk_queue(engine, t).mean_after(tail));
        trunk_peak_queue.push(port.queue_high_water());
    }
    let jain = jain_index(&session_rates_mbps);
    RunReport {
        session_rates_mbps,
        trunk_macr_mbps,
        trunk_utilization,
        trunk_mean_queue,
        trunk_peak_queue,
        jain,
        events: engine.events_processed(),
        counters,
    }
}

/// [`run_spec`] with observability: optional JSONL trace, optional
/// metrics snapshot, optional progress heartbeat and status file,
/// optional engine profile, optional panic flight recorder, optional
/// periodic checkpoints. None of them changes the simulation — a run
/// with every option on produces the same report as a bare [`run_spec`].
pub fn run_spec_opts(spec: &TopologySpec, opts: &RunOptions) -> Result<RunReport, String> {
    spec.validate()?;
    if opts.shards > 0 && opts.checkpoint_every.is_some() {
        return Err(
            "--shards is not yet compatible with --checkpoint-every: checkpoints are only \
             well-defined at shard epoch barriers; drop one of the two flags"
                .into(),
        );
    }
    // Scoped to this run; restored on drop, panics included.
    let _shard_guard = phantom_sim::ShardGuard::new(opts.shards);
    let wall_start = std::time::Instant::now();
    let (mut engine, net) = build_topology(spec);

    // One manifest describes the run; each artifact re-stamps it with
    // its own schema id. The config hash covers the whole parsed spec.
    let scenario = if opts.scenario.is_empty() {
        "cli"
    } else {
        opts.scenario.as_str()
    };
    let manifest = Manifest::new(METRICS_SCHEMA, scenario, spec.seed, &format!("{spec:?}"));

    let registry = opts.metrics.as_ref().map(|_| {
        let r = Registry::new();
        net.bind_metrics(&mut engine, &r);
        r
    });
    let (_flight_guard, flight_probe) = arm_flight(opts, &manifest);
    let mut probes: Vec<Box<dyn Probe>> = Vec::new();
    if let Some(trace) = trace_probe(opts, &manifest)? {
        probes.push(trace);
    }
    if let Some(flight) = flight_probe {
        probes.push(flight);
    }
    let guard = install_probes(probes);
    let marker = telemetry::begin_run();
    let prof = opts.profile.as_ref().map(|_| profile::begin_profile());

    let end = SimTime::ZERO + spec.duration;
    let mut ckpt = crate::checkpoint::CkptDriver::from_opts(
        opts,
        &manifest,
        crate::checkpoint::KIND_TOPOLOGY,
        end,
        &marker,
    )?;
    if opts.verbose || opts.status_file.is_some() || ckpt.is_some() {
        run_driver(&mut engine, end, opts, scenario, spec.seed, ckpt.as_mut())?;
    } else {
        engine.run_until(end);
    }
    drop(ckpt);
    let report = prof.map(profile::ProfileMarker::finish);
    let counters = marker.finish();
    drop(guard); // flushes the trace file

    if let (Some(path), Some(reg)) = (&opts.metrics, &registry) {
        write_metrics(path, reg, &manifest)?;
    }
    if let (Some(path), Some(report)) = (&opts.profile, report) {
        write_profile(path, &manifest, wall_start.elapsed().as_secs_f64(), report)?;
    }

    Ok(collect_report(spec, &engine, &net, counters))
}

/// Closed-form phantom prediction for the topology (ignores traffic
/// windows — every session is treated as greedy — and non-Phantom
/// algorithm lines; the CLI warns accordingly).
pub fn predict(spec: &TopologySpec) -> Result<String, String> {
    spec.validate()?;
    let u = match spec.algorithm {
        AlgorithmSpec::Phantom { u } => u,
        _ => 5.0,
    };
    let caps: Vec<f64> = spec
        .trunks
        .iter()
        .map(|t| phantom_atm::units::mbps_to_cps(t.mbps))
        .collect();
    let trunk_of = |a: &str, b: &str| -> usize {
        spec.trunks
            .iter()
            .position(|t| (t.a == a && t.b == b) || (t.a == b && t.b == a))
            .expect("validated connectivity")
    };
    let sessions: Vec<Session> = spec
        .sessions
        .iter()
        .map(|s| {
            let links = s.path.windows(2).map(|w| trunk_of(&w[0], &w[1])).collect();
            Session::on(links)
        })
        .collect();
    let (rates, macrs) = phantom_prediction(&caps, &sessions, u);
    let mut out = String::new();
    let _ = writeln!(out, "phantom fixed point (u = {u}, all sessions greedy):");
    for (i, r) in rates.iter().enumerate() {
        let path = spec.sessions[i].path.join("→");
        let _ = writeln!(out, "  session {i} [{path}]: {:8.2} Mb/s", cps_to_mbps(*r));
    }
    for (i, m) in macrs.iter().enumerate() {
        let t = &spec.trunks[i];
        let _ = writeln!(
            out,
            "  trunk {}–{}: MACR {:6.2} Mb/s",
            t.a,
            t.b,
            cps_to_mbps(*m)
        );
    }
    Ok(out)
}

/// Run many independent topology specs, fanning across up to `jobs`
/// worker threads (plain `std::thread::scope`, no pool dependency).
/// Each run is a pure function of its spec — including the seed — so the
/// results, returned in input order, are identical to a serial run.
fn run_specs(specs: &[TopologySpec], jobs: usize) -> Result<Vec<RunReport>, String> {
    let workers = jobs.max(1).min(specs.len());
    if workers <= 1 {
        return specs.iter().map(run_spec).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<RunReport, String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        local.push((i, run_spec(spec)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("run_specs worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

fn summary_row(report: &RunReport) -> Vec<f64> {
    let total: f64 = report.session_rates_mbps.iter().sum();
    let util = report.trunk_utilization.iter().copied().fold(0.0, f64::max);
    let max_q = report.trunk_peak_queue.iter().copied().max().unwrap_or(0) as f64;
    vec![total, report.jain, util, max_q]
}

/// Run the topology under every implemented algorithm and tabulate the
/// headline quantities. `jobs` bounds the worker threads; the table is
/// the same at any parallelism.
pub fn compare_algorithms(spec: &TopologySpec, jobs: usize) -> Result<Table, String> {
    spec.validate()?;
    let algorithms = [
        (AlgorithmSpec::Phantom { u: 5.0 }, "phantom"),
        (AlgorithmSpec::PhantomNi, "phantom-ni"),
        (AlgorithmSpec::Eprca, "eprca"),
        (AlgorithmSpec::Aprc, "aprc"),
        (AlgorithmSpec::Capc, "capc"),
        (AlgorithmSpec::Osu, "osu"),
        (AlgorithmSpec::Erica, "erica"),
    ];
    let specs: Vec<TopologySpec> = algorithms
        .iter()
        .map(|(alg, _)| {
            let mut s2 = spec.clone();
            s2.algorithm = *alg;
            s2
        })
        .collect();
    let reports = run_specs(&specs, jobs)?;
    let mut t = Table::new(
        "compare",
        "all algorithms on this topology",
        &[
            "algorithm",
            "total_mbps",
            "jain",
            "bottleneck_util",
            "max_q_cells",
        ],
    );
    for ((_, label), report) in algorithms.iter().zip(&reports) {
        t.add_row(label, summary_row(report));
    }
    Ok(t)
}

/// Sweep the Phantom utilization factor over the topology: one row per
/// `u`, columns for total throughput, fairness, utilization and queueing.
/// `jobs` bounds the worker threads; the table is the same at any
/// parallelism.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
pub fn sweep_u(spec: &TopologySpec, us: &[f64], jobs: usize) -> Result<Table, String> {
    spec.validate()?;
    for &u in us {
        if !(u > 0.0) {
            return Err(format!("u must be positive, got {u}"));
        }
    }
    let specs: Vec<TopologySpec> = us
        .iter()
        .map(|&u| {
            let mut s2 = spec.clone();
            s2.algorithm = AlgorithmSpec::Phantom { u };
            s2
        })
        .collect();
    let reports = run_specs(&specs, jobs)?;
    let mut t = Table::new(
        "sweep-u",
        "utilization-factor sweep",
        &["u", "total_mbps", "jain", "bottleneck_util", "max_q_cells"],
    );
    for (&u, report) in us.iter().zip(&reports) {
        t.add_row(&format!("{u}"), summary_row(report));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;

    const DUMBBELL: &str = "\
switch s1
switch s2
trunk s1 s2 150mbps 10us
session s1 s2 greedy
session s1 s2 greedy
algorithm phantom u=5
run 400ms seed=3
";

    #[test]
    fn run_matches_prediction_on_the_dumbbell() {
        let spec = parse_str(DUMBBELL).unwrap();
        let report = run_spec(&spec).unwrap();
        assert_eq!(report.session_rates_mbps.len(), 2);
        // fixed point: 68.18 Mb/s per session, MACR 13.64
        for r in &report.session_rates_mbps {
            assert!((r - 68.18).abs() < 5.0, "rate {r}");
        }
        assert!((report.trunk_macr_mbps[0] - 13.64).abs() < 1.5);
        assert!(report.jain > 0.99);
        assert!(report.events > 100_000);
        let rendered = report.render(&spec);
        assert!(rendered.contains("session 0"));
        assert!(rendered.contains("trunk s1–s2"));
    }

    #[test]
    fn predict_without_simulation() {
        let spec = parse_str(DUMBBELL).unwrap();
        let text = predict(&spec).unwrap();
        assert!(text.contains("68.18"));
        assert!(text.contains("13.64"));
    }

    #[test]
    fn sweep_u_shows_the_utilization_dial() {
        let spec = parse_str(DUMBBELL).unwrap();
        let t = sweep_u(&spec, &[2.0, 5.0, 20.0], 1).unwrap();
        let u2 = t.cell("2", "bottleneck_util").unwrap();
        let u20 = t.cell("20", "bottleneck_util").unwrap();
        assert!(u20 > u2, "higher u buys utilization: {u2:.3} vs {u20:.3}");
        assert!((u2 - 0.80).abs() < 0.05, "u=2 with n=2 targets 4/5");
        assert!(t.cell("5", "jain").unwrap() > 0.99);
        assert!(sweep_u(&spec, &[0.0], 1).is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let spec = parse_str(DUMBBELL).unwrap();
        let serial = sweep_u(&spec, &[2.0, 5.0], 1).unwrap();
        let parallel = sweep_u(&spec, &[2.0, 5.0], 4).unwrap();
        assert_eq!(serial.render(), parallel.render());
    }

    /// Run with every observability option on and validate each artifact
    /// against the committed schema docs in `schemas/`.
    #[test]
    fn observability_artifacts_validate_against_committed_schemas() {
        let dir = std::env::temp_dir().join("phantom_cli_obs_test");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = parse_str(DUMBBELL).unwrap();
        let opts = RunOptions {
            trace: Some(dir.join("run.jsonl")),
            metrics: Some(dir.join("run.prom")),
            profile: Some(dir.join("run.profile.json")),
            status_file: Some(dir.join("run.status.json")),
            post_mortem: Some(dir.join("run.pm.jsonl")),
            scenario: "dumbbell".into(),
            ..Default::default()
        };
        let traced = run_spec_opts(&spec, &opts).unwrap();
        let plain = run_spec(&spec).unwrap();
        assert_eq!(
            plain.render(&spec),
            traced.render(&spec),
            "observability must not change the simulation"
        );

        let profile = std::fs::read_to_string(dir.join("run.profile.json")).unwrap();
        assert!(profile.starts_with("{\n  \"schema\": \"phantom-profile/1\""));
        assert!(profile.contains("\"scenario\":\"dumbbell\""));
        for name in ["\"calendar.pop\"", "\"calendar.advance.scan\"", "\"cell\""] {
            assert!(profile.contains(name), "{name} missing from profile");
        }
        let share_line = profile
            .lines()
            .find(|l| l.contains("\"attributed_share\""))
            .unwrap();
        let share: f64 = share_line
            .trim()
            .trim_end_matches(',')
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            share > 0.9 && share <= 1.0 + 1e-9,
            "node + phase self-times must account for the loop wall: {share}"
        );

        let status = std::fs::read_to_string(dir.join("run.status.json")).unwrap();
        assert!(status.starts_with("{\"schema\": \"phantom-status/1\""));
        assert!(status.ends_with("}\n"));
        for key in [
            "\"state\": \"done\"",
            "\"done\": 10",
            "\"total\": 10",
            "\"unit\": \"slices\"",
            "\"progress\": 1",
            "\"sim_end_secs\": 0.4",
        ] {
            assert!(status.contains(key), "{key} missing from status: {status}");
        }

        assert!(
            !dir.join("run.pm.jsonl").exists(),
            "a run that finishes normally writes no post-mortem"
        );

        let trace = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
        let mut lines = trace.lines();
        let first = lines.next().unwrap();
        for key in [
            "\"schema\":\"phantom-trace/1\"",
            "\"scenario\":\"dumbbell\"",
            "\"seed\":3",
            "\"config_hash\":",
            "\"git_rev\":",
        ] {
            assert!(first.contains(key), "{key} missing from manifest: {first}");
        }
        let mut events = 0u64;
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(
                line.contains("\"t\":")
                    && line.contains("\"node\":")
                    && line.contains("\"kind\":\""),
                "event shape: {line}"
            );
            events += 1;
        }
        assert!(events > 0, "a traced run must emit events");

        let prom = std::fs::read_to_string(dir.join("run.prom")).unwrap();
        assert!(prom.starts_with("# manifest: {\"schema\":\"phantom-metrics/1\""));
        for name in [
            "atm_tx_cells_total",
            "atm_dropped_cells_total",
            "atm_queue_cells",
            "atm_macr_cells_per_sec",
            "atm_throughput_cells_per_sec",
            "atm_cells_routed_total",
        ] {
            assert!(prom.contains(&format!("# TYPE {name} ")), "{name} missing");
        }

        let json = std::fs::read_to_string(dir.join("run.prom.json")).unwrap();
        assert!(json.contains("\"schema\": \"phantom-metrics/1\""));
        assert!(json.contains("\"manifest\": {\"schema\":\"phantom-metrics/1\""));
        assert!(json.contains("\"metrics\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let schemas = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../schemas");
        for (file, tag) in [
            ("phantom-trace-v1.md", "phantom-trace/1"),
            ("phantom-metrics-v1.md", "phantom-metrics/1"),
            ("phantom-bench-v2.md", "phantom-bench/2"),
            ("phantom-bench-v3.md", "phantom-bench/3"),
            ("phantom-csv-v1.md", "phantom-csv/1"),
            ("phantom-scene-v1.md", "phantom-scene/1"),
            ("phantom-profile-v1.md", "phantom-profile/1"),
            ("phantom-status-v1.md", "phantom-status/1"),
            ("phantom-postmortem-v1.md", "phantom-postmortem/1"),
            ("phantom-checkpoint-v1.md", "phantom-checkpoint/1"),
            ("phantom-diverge-v1.md", "phantom-diverge/1"),
        ] {
            let doc = std::fs::read_to_string(schemas.join(file)).unwrap();
            assert!(doc.contains(tag), "{file} must document {tag}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A flight-recorder dump must round-trip through the analyzer's
    /// flat-object parser: every line of the post-mortem — manifest,
    /// snapshot, arena rows, retained events — is one parseable flat
    /// JSON object, and the snapshot reflects the run that fed it.
    #[test]
    fn flight_dump_round_trips_through_the_flat_parser() {
        use phantom_analyze::jsonl::{parse_flat_object, Scalar};

        let dir = std::env::temp_dir().join("phantom_cli_flight_test");
        let _ = std::fs::create_dir_all(&dir);
        let spec = parse_str(DUMBBELL).unwrap();
        let manifest = Manifest::new(POSTMORTEM_SCHEMA, "dumbbell", spec.seed, "cfg");
        // Arm outside run_spec_opts so the recorder survives the run and
        // `dump_now` can render what a panic hook would have written.
        let _g = flight::arm(&dir.join("pm.jsonl"), Some(&manifest.to_json()), 32);
        let _probe = ProbeGuard::install(Box::new(FlightProbe));
        let report = run_spec_opts(&spec, &RunOptions::default()).unwrap();
        let dump = flight::dump_now("inspection").expect("recorder is armed");

        let get = |pairs: &[(String, Scalar)], key: &str| -> Scalar {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("{key} missing"))
        };
        let mut arenas = 0u32;
        let mut events = 0u32;
        for (i, line) in dump.lines().enumerate() {
            let pairs =
                parse_flat_object(line).unwrap_or_else(|e| panic!("dump line {i}: {e}: {line}"));
            match i {
                0 => assert_eq!(
                    get(&pairs, "schema"),
                    Scalar::Str("phantom-postmortem/1".into())
                ),
                1 => {
                    assert_eq!(get(&pairs, "record"), Scalar::Str("snapshot".into()));
                    assert_eq!(get(&pairs, "panic"), Scalar::Str("inspection".into()));
                    let dispatches = match get(&pairs, "dispatches") {
                        Scalar::Num(n) => n as u64,
                        other => panic!("dispatches: {other:?}"),
                    };
                    assert!(
                        dispatches <= report.events && dispatches > 0,
                        "snapshot dispatches {dispatches} vs {} events",
                        report.events
                    );
                }
                _ => match get(&pairs, "record") {
                    Scalar::Str(r) if r == "arena" => {
                        let _ = get(&pairs, "type");
                        arenas += 1;
                    }
                    Scalar::Str(r) if r == "event" => {
                        // phantom-trace/1 field layout, tagged as a record
                        let _ = get(&pairs, "t");
                        let _ = get(&pairs, "kind");
                        events += 1;
                    }
                    other => panic!("unexpected record on line {i}: {other:?}"),
                },
            }
        }
        assert!(arenas > 0, "dump lists the typed arenas");
        assert!(events > 0, "dump retains a ring of recent events");
    }

    #[test]
    fn every_algorithm_runs() {
        for alg in ["phantom-ni", "eprca", "aprc", "capc", "erica", "osu"] {
            let src = DUMBBELL.replace("phantom u=5", alg);
            let spec = parse_str(&src).unwrap();
            let report = run_spec(&spec).unwrap();
            let total: f64 = report.session_rates_mbps.iter().sum();
            assert!(total > 60.0, "{alg} collapsed: {total:.1} Mb/s");
        }
    }
}
