//! # phantom-cli — run Phantom experiments from a topology file
//!
//! A small line-oriented DSL describes switches, trunks and sessions;
//! the CLI simulates the topology under any implemented flow-control
//! algorithm, prints per-session rates and per-trunk statistics, and can
//! also print the *analytic* phantom prediction (weighted max-min with
//! one imaginary session per link) without simulating at all.
//!
//! ```text
//! # dumbbell.phantom — two greedy sessions over one OC-3
//! switch s1
//! switch s2
//! trunk s1 s2 150mbps 10us
//! session s1 s2 greedy
//! session s1 s2 greedy rtt=5ms
//! algorithm phantom u=5
//! run 500ms seed=42
//! ```
//!
//! ```sh
//! phantom run dumbbell.phantom          # simulate, print the report
//! phantom predict dumbbell.phantom     # closed-form fixed point only
//! phantom check dumbbell.phantom       # parse + validate, no run
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod diverge;
pub mod exec;
pub mod parse;
pub mod scene;
pub mod spec;

pub use checkpoint::{nearest_checkpoint, read_checkpoint, resume, CheckpointDoc, ResumeOutcome};
pub use diverge::{diverge, DivergeOptions, DivergeOutcome};
pub use exec::{
    compare_algorithms, predict, run_spec, run_spec_opts, sweep_u, CheckpointEvery, RunOptions,
    RunReport,
};
pub use parse::{parse_str, ParseError};
pub use scene::{run_scene_opts, SceneReport};
pub use spec::{AlgorithmSpec, SessionSpec, TopologySpec};
