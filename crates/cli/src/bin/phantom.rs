//! `phantom` — simulate a topology file.
//!
//! ```text
//! phantom run <file>        simulate and report
//! phantom predict <file>    closed-form phantom fixed point (no simulation)
//! phantom check <file>      parse + validate only
//! phantom trace-lint <file.jsonl>   validate a trace artifact
//! ```

use phantom_cli::{compare_algorithms, parse_str, predict, run_spec_opts, sweep_u, RunOptions};
use phantom_sim::probe::KindSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: phantom <run|predict|check> <topology-file>");
    eprintln!("       phantom sweep <topology-file> <u,u,...>   # e.g. sweep t.phantom 2,5,10");
    eprintln!("       phantom compare <topology-file>           # every algorithm, one table");
    eprintln!("       phantom trace-lint <file.jsonl>           # validate a trace artifact");
    eprintln!("       ... [--jobs N]                            # parallel sweep/compare runs");
    eprintln!("       run ... [--trace F.jsonl] [--trace-filter KINDS]  # JSONL event trace");
    eprintln!("       run ... [--metrics F.prom]                # metrics snapshot + F.prom.json");
    eprintln!("       run ... [-v]                              # progress heartbeat on stderr");
    eprintln!();
    eprintln!("topology file format:");
    eprintln!("  switch <name>");
    eprintln!("  trunk <a> <b> <rate: 150mbps> <prop: 10us>");
    eprintln!("  session <sw>... <greedy|window|onoff|random> [start=|stop=|on=|off=|rtt=]");
    eprintln!("  cbr <sw>... <rate> [on=|off=|rtt=]        # unresponsive background");
    eprintln!("  priority cbr                              # strict-priority CBR queues");
    eprintln!("  algorithm <phantom|phantom-ni|eprca|aprc|capc|erica> [u=5]");
    eprintln!("  run <duration: 500ms> [seed=1996]");
    ExitCode::FAILURE
}

/// Remove `flag <value>` from `args`, returning the value if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Remove a bare `flag` from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Structural validation of a JSONL trace: manifest first line carrying
/// the trace schema, then one JSON object per line with `kind` and `t`
/// fields. Reports the number of events on success.
fn trace_lint(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = text.lines();
    let first = lines.next().ok_or_else(|| format!("{path}: empty file"))?;
    if !(first.starts_with('{') && first.ends_with('}')) {
        return Err(format!("{path}:1: manifest line is not a JSON object"));
    }
    if !first.contains("\"schema\":\"phantom-trace/1\"") {
        return Err(format!("{path}:1: missing \"schema\":\"phantom-trace/1\""));
    }
    for key in [
        "\"scenario\":",
        "\"seed\":",
        "\"config_hash\":",
        "\"git_rev\":",
    ] {
        if !first.contains(key) {
            return Err(format!("{path}:1: manifest missing {key}"));
        }
    }
    let mut events = 0u64;
    for (n, line) in lines.enumerate() {
        let lineno = n + 2;
        if line.is_empty() {
            return Err(format!("{path}:{lineno}: empty line"));
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("{path}:{lineno}: not a JSON object"));
        }
        if !line.contains("\"kind\":\"") {
            return Err(format!("{path}:{lineno}: event missing \"kind\""));
        }
        if !line.contains("\"t\":") {
            return Err(format!("{path}:{lineno}: event missing \"t\""));
        }
        events += 1;
    }
    println!("{path}: ok (manifest + {events} events)");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("trace-lint") {
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return match trace_lint(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut jobs = 1usize;
    let mut opts = RunOptions {
        verbose: take_switch(&mut args, "-v"),
        ..RunOptions::default()
    };
    let flags = (|| -> Result<(), String> {
        if let Some(v) = take_value(&mut args, "--jobs")? {
            jobs = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad jobs: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--trace")? {
            opts.trace = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--trace-filter")? {
            opts.trace_filter = KindSet::parse(&v)?;
        }
        if let Some(v) = take_value(&mut args, "--metrics")? {
            opts.metrics = Some(PathBuf::from(v));
        }
        Ok(())
    })();
    if let Err(e) = flags {
        eprintln!("error: {e}");
        return usage();
    }

    let (cmd, path, extra) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, extra] => (cmd.as_str(), path.as_str(), Some(extra.clone())),
        _ => return usage(),
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_str(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    opts.scenario = path.to_string();
    let outcome = match cmd {
        "check" => {
            println!(
                "{path}: ok ({} switches, {} trunks, {} sessions)",
                spec.switches.len(),
                spec.trunks.len(),
                spec.sessions.len()
            );
            Ok(())
        }
        "predict" => predict(&spec).map(|text| print!("{text}")),
        "compare" => compare_algorithms(&spec, jobs).map(|t| print!("{}", t.render())),
        "run" => run_spec_opts(&spec, &opts).map(|report| print!("{}", report.render(&spec))),
        "sweep" => {
            let spec_list = extra.unwrap_or_else(|| "2,5,10".to_string());
            let us: Result<Vec<f64>, _> = spec_list
                .split(',')
                .map(|x| x.trim().parse::<f64>())
                .collect();
            match us {
                Ok(us) => sweep_u(&spec, &us, jobs).map(|t| print!("{}", t.render())),
                Err(_) => Err(format!("bad u list: {spec_list}")),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
