//! `phantom` — simulate a topology or scene file.
//!
//! ```text
//! phantom run <file>        simulate and report (topology DSL or scene JSON)
//! phantom predict <file>    closed-form phantom fixed point (no simulation)
//! phantom check <file>      parse + validate only
//! phantom list              built-in experiments + committed scene files
//! phantom trace-lint <file.jsonl>   validate a trace artifact
//! phantom analyze <file.jsonl>      trace -> phantom-analysis/1 report
//! phantom profile <file.json>       render a phantom-profile/1 artifact
//! phantom status <file> [--watch]   pretty-print a phantom-status/1 file
//! ```
//!
//! A file whose first non-blank byte is `{` is treated as a
//! `phantom-scene/1` document (declarative topology + workload +
//! mid-run timeline); anything else is the line-oriented topology DSL.

use phantom_analyze::jsonl::{parse_flat_object, Scalar};
use phantom_analyze::{analyze_trace_str, lint_trace_str, AnalysisTargets, LintError};
use phantom_cli::{
    compare_algorithms, parse_str, predict, run_scene_opts, run_spec_opts, sweep_u, RunOptions,
};
use phantom_scenarios::registry::all_experiments;
use phantom_scenarios::shape::targets_for;
use phantom_scene::{check_error_json, check_ok_json, load_scene_dir, parse_scene, Json};
use phantom_sim::probe::KindSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Seed for scene runs when `--seed` is not given (the sweep default).
const DEFAULT_SCENE_SEED: u64 = 1996;

/// Default `--server` for `phantom submit` / `phantom jobs`, matching
/// the default `phantom serve --listen`.
const DEFAULT_SERVER: &str = "127.0.0.1:8790";

/// `trace-lint` exit code for a structurally invalid trace.
const EXIT_INVALID: u8 = 1;
/// `trace-lint` exit code for a trace whose final line was cut short
/// (e.g. the producer died mid-write) — distinct so callers can retry.
const EXIT_TRUNCATED: u8 = 2;
/// `diverge` exit code when the traces differ (0 = identical, 1 =
/// operational error) — CI gates branch on it.
const EXIT_DIVERGED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!("usage: phantom <run|predict|check> <topology-file|scene.json>");
    eprintln!("       phantom list [--scenes DIR]               # experiments + scene files");
    eprintln!("       phantom sweep <topology-file> <u,u,...>   # e.g. sweep t.phantom 2,5,10");
    eprintln!("       phantom compare <topology-file>           # every algorithm, one table");
    eprintln!("       phantom trace-lint <file.jsonl>           # validate a trace artifact");
    eprintln!("                                                 # exit 1 invalid, 2 truncated");
    eprintln!("       phantom analyze <file.jsonl> [--window MS] [--out F.json]");
    eprintln!("                                                 # phantom-analysis/1 report");
    eprintln!("       phantom profile <file.json>               # render a phantom-profile/1");
    eprintln!("                                                 # artifact as a self-time table");
    eprintln!("       phantom status <file> [--watch]           # pretty-print a phantom-status/1");
    eprintln!("                                                 # file; --watch polls until done");
    eprintln!("       phantom resume <ckpt.jsonl> [--until MS]  # continue a checkpointed run;");
    eprintln!("                                                 # trace suffix is byte-identical");
    eprintln!("       phantom diverge <a.jsonl> <b.jsonl> [--context N] [--out F]");
    eprintln!("                       [--checkpoints DIR]       # first divergent event + state");
    eprintln!("                                                 # diff; exit 0 same, 3 diverged");
    eprintln!("       phantom serve [--listen ADDR] [--workers N] [--queue N] [--spool DIR]");
    eprintln!("                                                 # phantom-as-a-service daemon;");
    eprintln!("                                                 # SIGTERM drains and exits 0");
    eprintln!("       phantom submit <scene.json> [--server H:P] [--seed N] [--storm N]");
    eprintln!("                                                 # POST a scene; --storm floods N");
    eprintln!("       phantom jobs [ID] [--server H:P] [--cancel] [--trace-out F] [--analysis]");
    eprintln!("                                                 # list/inspect/cancel server jobs");
    eprintln!(
        "       check <file> [--json]                     # machine-readable phantom-check/1"
    );
    eprintln!("       ... [--jobs N]                            # parallel sweep/compare runs");
    eprintln!("       ... [--seed N]                            # override the run seed");
    eprintln!("       run ... [--trace F.jsonl] [--trace-filter KINDS]  # JSONL event trace");
    eprintln!("       run ... [--metrics F.prom]                # metrics snapshot + F.prom.json");
    eprintln!("       run ... [-v]                              # progress heartbeat on stderr");
    eprintln!(
        "       run ... [--profile F.json]                # phantom-profile/1 engine profile"
    );
    eprintln!("       run ... [--status-file F.json]            # live phantom-status/1 heartbeat");
    eprintln!(
        "       run ... [--heartbeat SECS]                # sim-secs between -v/status beats"
    );
    eprintln!("       run ... [--post-mortem F.jsonl]           # panic flight-recorder dump");
    eprintln!("       run ... [--post-mortem-depth N]           # events kept in the dump ring");
    eprintln!("       run ... [--checkpoint-every S|Nev] [--checkpoint-dir DIR]");
    eprintln!("                                                 # periodic phantom-checkpoint/1");
    eprintln!("       run ... [--shards N]                      # intra-run PDES shards; output");
    eprintln!("                                                 # byte-identical at any N >= 1");
    eprintln!("       run <scene.json> [--analyze]              # live phantom-analysis/1 report");
    eprintln!();
    eprintln!("scene file format: phantom-scene/1 JSON — see schemas/phantom-scene-v1.md");
    eprintln!();
    eprintln!("topology file format:");
    eprintln!("  switch <name>");
    eprintln!("  trunk <a> <b> <rate: 150mbps> <prop: 10us>");
    eprintln!("  session <sw>... <greedy|window|onoff|random> [start=|stop=|on=|off=|rtt=]");
    eprintln!("  cbr <sw>... <rate> [on=|off=|rtt=]        # unresponsive background");
    eprintln!("  priority cbr                              # strict-priority CBR queues");
    eprintln!("  algorithm <phantom|phantom-ni|eprca|aprc|capc|erica> [u=5]");
    eprintln!("  run <duration: 500ms> [seed=1996]");
    ExitCode::FAILURE
}

/// Remove `flag <value>` from `args`, returning the value if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Remove a bare `flag` from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Dispatch a `phantom-scene/1` file: `check` validates, `run`
/// simulates (with the usual trace/metrics options and an optional
/// live analysis report against the scene's own declared targets).
fn scene_command(
    cmd: &str,
    path: &str,
    input: &str,
    seed: Option<u64>,
    analyze: bool,
    json: bool,
    opts: &RunOptions,
) -> ExitCode {
    let scene = match parse_scene(input) {
        Ok(s) => s,
        Err(e) => {
            // `check --json` keeps the exact error text, wrapped in the
            // phantom-check/1 envelope (the same body the serve daemon
            // returns for a 400); stderr keeps the prose form either way.
            if json && cmd == "check" {
                println!("{}", check_error_json(path, &e));
            }
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = seed.unwrap_or(DEFAULT_SCENE_SEED);
    match cmd {
        "check" => {
            if json {
                println!("{}", check_ok_json(path, &scene));
            } else if let Some(generate) = &scene.generate {
                // Generated scenes declare no explicit lists; report the
                // shape the generator will expand to.
                println!(
                    "{path}: ok (scene `{}`: generated, {} trunks, {} sessions, {} timeline events)",
                    scene.id,
                    generate.n_trunks(),
                    generate.n_sessions(),
                    scene.timeline.len()
                );
            } else {
                println!(
                    "{path}: ok (scene `{}`: {} switches, {} trunks, {} sessions, {} timeline events)",
                    scene.id,
                    scene.switches.len(),
                    scene.trunks.len(),
                    scene.sessions.len(),
                    scene.timeline.len()
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let window = analyze.then_some(phantom_analyze::DEFAULT_WINDOW_SECS);
            match run_scene_opts(&scene, seed, window, opts) {
                Ok(report) => {
                    print!("{}", report.result.render(60));
                    println!(
                        "   [scene {}, seed {}, {} events, {} drops, peak queue {}]",
                        scene.id,
                        seed,
                        report.events,
                        report.counters.drops,
                        report.counters.queue_peak
                    );
                    if let Some(a) = report.analysis {
                        print!("{}", a.to_json());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: `{other}` takes a topology file; scene files support run and check");
            ExitCode::FAILURE
        }
    }
}

/// `phantom list`: the built-in experiment registry, then any scene
/// files in `--scenes DIR` (default `scenes/`, skipped silently when
/// the default directory does not exist).
fn list(scenes_dir: Option<&str>) -> ExitCode {
    println!("built-in experiments (run with `repro <id>`):");
    for e in all_experiments() {
        println!("  {:8} {}", e.id, e.describe);
    }
    let (dir, explicit) = match scenes_dir {
        Some(d) => (PathBuf::from(d), true),
        None => (PathBuf::from("scenes"), false),
    };
    if !dir.is_dir() {
        if explicit {
            eprintln!("error: {}: not a directory", dir.display());
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    match load_scene_dir(&dir) {
        Ok(scenes) => {
            println!();
            println!(
                "scene files in {} (run with `phantom run <file>` or `repro <id> --scenes {}`):",
                dir.display(),
                dir.display()
            );
            for s in &scenes {
                println!("  {:8} {}", s.id, s.describe);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Full validation of a JSONL trace: the manifest and every event line
/// must parse under the exact `phantom-trace/1` grammar. A trace with a
/// manifest and no events is valid (exit 0); a trace whose final line
/// was cut mid-record gets its own exit code so producers that died
/// mid-write are distinguishable from corrupt data.
fn trace_lint(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(EXIT_INVALID);
        }
    };
    match lint_trace_str(&text) {
        Ok(events) => {
            println!("{path}: ok (manifest + {events} events)");
            ExitCode::SUCCESS
        }
        Err(LintError::Truncated { line, msg }) => {
            eprintln!("error: {path}:{line}: truncated: {msg}");
            ExitCode::from(EXIT_TRUNCATED)
        }
        Err(LintError::Invalid { line, msg }) => {
            eprintln!("error: {path}:{line}: {msg}");
            ExitCode::from(EXIT_INVALID)
        }
    }
}

/// `phantom analyze`: stream a trace file into a `phantom-analysis/1`
/// report, using the per-figure expected-shape table when the trace's
/// manifest names a known scenario.
fn analyze(path: &str, window_secs: Option<f64>, out: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let manifest = phantom_analyze::jsonl::parse_manifest_line(
        text.lines()
            .next()
            .ok_or_else(|| format!("{path}: empty file"))?,
    )
    .map_err(|e| format!("{path}:1: {e}"))?;
    let targets: AnalysisTargets = targets_for(&manifest.scenario);
    let window = window_secs.unwrap_or(phantom_analyze::DEFAULT_WINDOW_SECS);
    let report = analyze_trace_str(&text, targets, window).map_err(|e| format!("{path}: {e}"))?;
    let json = report.to_json();
    match out {
        Some(f) => std::fs::write(f, &json).map_err(|e| format!("cannot write {f}: {e}"))?,
        None => print!("{json}"),
    }
    Ok(())
}

/// Find `key` in a parsed flat object.
fn field<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Numeric field, `None` when absent or `null`.
fn num(pairs: &[(String, Scalar)], key: &str) -> Option<f64> {
    match field(pairs, key) {
        Some(Scalar::Num(v)) => Some(*v),
        _ => None,
    }
}

/// String field, `None` when absent.
fn text<'a>(pairs: &'a [(String, Scalar)], key: &str) -> Option<&'a str> {
    match field(pairs, key) {
        Some(Scalar::Str(s)) => Some(s),
        _ => None,
    }
}

/// `phantom profile`: re-read a `phantom-profile/1` document and render
/// it as sorted self-time tables. The document is line-oriented by
/// construction — every attribution row is one flat JSON object on its
/// own line and every top-level scalar sits alone on its own line — so
/// the same flat-object scanner that reads traces reads this.
fn show_profile(path: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut section = String::new();
    // (section, name, events, self_secs, share)
    let mut rows: Vec<(String, String, u64, f64, f64)> = Vec::new();
    let mut scalars: Vec<(String, Scalar)> = Vec::new();
    let mut manifest: Vec<(String, Scalar)> = Vec::new();
    let mut calendar: Vec<(String, Scalar)> = Vec::new();
    for (lineno, raw) in doc.lines().enumerate() {
        let t = raw.trim().trim_end_matches(',');
        if t == "{" || t == "}" || t == "]" || t.is_empty() {
            continue;
        }
        let err = |e: String| format!("{path}:{}: {e}", lineno + 1);
        if t.starts_with('{') {
            let pairs = parse_flat_object(t).map_err(err)?;
            rows.push((
                section.clone(),
                text(&pairs, "name").unwrap_or("?").to_string(),
                num(&pairs, "events").unwrap_or(0.0) as u64,
                num(&pairs, "self_secs").unwrap_or(0.0),
                num(&pairs, "share").unwrap_or(0.0),
            ));
            continue;
        }
        let Some((key, val)) = t.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let val = val.trim();
        if val == "[" {
            section = key;
        } else if val.starts_with('{') {
            let pairs = parse_flat_object(val).map_err(err)?;
            match key.as_str() {
                "manifest" => manifest = pairs,
                "calendar" => calendar = pairs,
                _ => {}
            }
        } else {
            let pairs = parse_flat_object(&format!("{{\"v\": {val}}}")).map_err(err)?;
            scalars.push((key, pairs.into_iter().next().expect("one pair").1));
        }
    }
    if text(&scalars, "schema") != Some("phantom-profile/1") {
        return Err(format!("{path}: not a phantom-profile/1 document"));
    }
    println!(
        "phantom-profile/1 — {} (seed {})",
        text(&manifest, "scenario").unwrap_or("?"),
        num(&manifest, "seed").unwrap_or(0.0) as u64
    );
    println!(
        "  loop wall {:.3}s of {:.3}s harness wall — {} events in {} dispatches \
         (batching {:.2}x), {:.0} events/s, {:.1}% attributed",
        num(&scalars, "loop_wall_secs").unwrap_or(0.0),
        num(&scalars, "wall_secs").unwrap_or(0.0),
        num(&scalars, "events").unwrap_or(0.0) as u64,
        num(&scalars, "dispatches").unwrap_or(0.0) as u64,
        num(&scalars, "batching").unwrap_or(1.0),
        num(&scalars, "events_per_sec").unwrap_or(0.0),
        num(&scalars, "attributed_share").unwrap_or(0.0) * 100.0,
    );
    for sec in ["nodes", "kinds", "phases"] {
        let mut list: Vec<_> = rows.iter().filter(|r| r.0 == sec).collect();
        if list.is_empty() {
            continue;
        }
        list.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
        println!();
        println!(
            "  {:34} {:>12} {:>10} {:>7}",
            sec, "events", "self", "share"
        );
        for r in list {
            println!(
                "    {:32} {:>12} {:>9.3}s {:>6.1}%",
                r.1,
                r.2,
                r.3,
                r.4 * 100.0
            );
        }
    }
    if !calendar.is_empty() {
        println!();
        println!(
            "  calendar: {} active inserts, {} wheel pushes, {} far pushes; \
             {} advances ({} promoted, {} sorted), occupancy mean {:.1} / max {}",
            num(&calendar, "active_inserts").unwrap_or(0.0) as u64,
            num(&calendar, "wheel_pushes").unwrap_or(0.0) as u64,
            num(&calendar, "far_pushes").unwrap_or(0.0) as u64,
            num(&calendar, "advances").unwrap_or(0.0) as u64,
            num(&calendar, "promoted").unwrap_or(0.0) as u64,
            num(&calendar, "sorted_entries").unwrap_or(0.0) as u64,
            num(&calendar, "occupied_mean").unwrap_or(0.0),
            num(&calendar, "occupied_max").unwrap_or(0.0) as u64,
        );
    }
    Ok(())
}

/// `phantom status`: pretty-print a `phantom-status/1` file as one
/// line; with `--watch`, poll about once a second until the writer
/// reports `done`. Reads are safe mid-run because the writer replaces
/// the file atomically. A watched file that disappears after we saw it
/// at least once means the run (or its harness) cleaned up — that is a
/// normal end of watch, not an error.
fn show_status(path: &str, watch: bool) -> Result<(), String> {
    let mut seen_once = false;
    loop {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) if watch && seen_once && e.kind() == std::io::ErrorKind::NotFound => {
                println!("run ended: status file {path} removed");
                return Ok(());
            }
            Err(e) => return Err(format!("cannot read {path}: {e}")),
        };
        seen_once = true;
        let pairs = parse_flat_object(doc.trim()).map_err(|e| format!("{path}: {e}"))?;
        if text(&pairs, "schema") != Some("phantom-status/1") {
            return Err(format!("{path}: not a phantom-status/1 document"));
        }
        let state = text(&pairs, "state").unwrap_or("?").to_string();
        let mut line = format!(
            "{} seed {}: {} {:.0}% ({}/{} {}) — {} events, {:.0}/s, wall {:.1}s",
            text(&pairs, "scenario").unwrap_or("?"),
            num(&pairs, "seed").unwrap_or(0.0) as u64,
            state,
            num(&pairs, "progress").unwrap_or(0.0) * 100.0,
            num(&pairs, "done").unwrap_or(0.0) as u64,
            num(&pairs, "total").unwrap_or(0.0) as u64,
            text(&pairs, "unit").unwrap_or("?"),
            num(&pairs, "events").unwrap_or(0.0) as u64,
            num(&pairs, "events_per_sec").unwrap_or(0.0),
            num(&pairs, "wall_secs").unwrap_or(0.0),
        );
        if let Some(eta) = num(&pairs, "eta_secs") {
            line.push_str(&format!(", eta {eta:.1}s"));
        }
        if let Some(rss) = num(&pairs, "rss_bytes") {
            line.push_str(&format!(", rss {:.0} MB", rss / 1e6));
        }
        if let (Some(sim), Some(end)) = (num(&pairs, "sim_secs"), num(&pairs, "sim_end_secs")) {
            line.push_str(&format!(", sim {sim:.2}/{end:.2}s"));
        }
        println!("{line}");
        if !watch || state == "done" {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(1000));
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("list") {
        let scenes = match take_value(&mut args, "--scenes") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        if args.len() != 1 {
            return usage();
        }
        return list(scenes.as_deref());
    }

    if args.first().map(String::as_str) == Some("trace-lint") {
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return trace_lint(path);
    }

    if args.first().map(String::as_str) == Some("analyze") {
        let parsed = (|| -> Result<(Option<f64>, Option<String>), String> {
            let window = match take_value(&mut args, "--window")? {
                Some(v) => match v.parse::<f64>() {
                    Ok(ms) if ms > 0.0 => Some(ms / 1e3),
                    _ => return Err(format!("bad window (ms): {v}")),
                },
                None => None,
            };
            Ok((window, take_value(&mut args, "--out")?))
        })();
        let (window, out) = match parsed {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return match analyze(path, window, out.as_deref()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.first().map(String::as_str) == Some("profile") {
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return match show_profile(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.first().map(String::as_str) == Some("diverge") {
        let parsed = (|| -> Result<phantom_cli::DivergeOptions, String> {
            let mut opts = phantom_cli::DivergeOptions::default();
            if let Some(v) = take_value(&mut args, "--context")? {
                opts.context = v.parse().map_err(|_| format!("bad context: {v}"))?;
            }
            if let Some(v) = take_value(&mut args, "--checkpoints")? {
                opts.checkpoints = Some(PathBuf::from(v));
            }
            Ok(opts)
        })();
        let dopts = match parsed {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        let out = match take_value(&mut args, "--out") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        let [_, a, b] = args.as_slice() else {
            return usage();
        };
        return match phantom_cli::diverge(Path::new(a), Path::new(b), &dopts) {
            Ok((outcome, report)) => {
                match &out {
                    Some(f) => {
                        if let Err(e) = std::fs::write(f, &report) {
                            eprintln!("error: cannot write {f}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    None => print!("{report}"),
                }
                match outcome {
                    phantom_cli::DivergeOutcome::Identical { lines } => {
                        eprintln!("no divergence: {lines} lines identical");
                        ExitCode::SUCCESS
                    }
                    phantom_cli::DivergeOutcome::Diverged { line } => {
                        eprintln!("traces diverge at line {line}");
                        ExitCode::from(EXIT_DIVERGED)
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.first().map(String::as_str) == Some("status") {
        let watch = take_switch(&mut args, "--watch");
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return match show_status(path, watch) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.first().map(String::as_str) == Some("serve") {
        return serve_command(args);
    }
    if args.first().map(String::as_str) == Some("submit") {
        return submit_command(args);
    }
    if args.first().map(String::as_str) == Some("jobs") {
        return jobs_command(args);
    }

    let mut jobs = 1usize;
    let mut seed: Option<u64> = None;
    let mut until: Option<phantom_sim::SimTime> = None;
    let analyze = take_switch(&mut args, "--analyze");
    let json_check = take_switch(&mut args, "--json");
    let mut opts = RunOptions {
        verbose: take_switch(&mut args, "-v"),
        ..RunOptions::default()
    };
    let flags = (|| -> Result<(), String> {
        if let Some(v) = take_value(&mut args, "--jobs")? {
            jobs = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad jobs: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--seed")? {
            seed = Some(v.parse::<u64>().map_err(|_| format!("bad seed: {v}"))?);
        }
        if let Some(v) = take_value(&mut args, "--trace")? {
            opts.trace = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--trace-filter")? {
            opts.trace_filter = KindSet::parse(&v)?;
        }
        if let Some(v) = take_value(&mut args, "--metrics")? {
            opts.metrics = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--profile")? {
            opts.profile = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--status-file")? {
            opts.status_file = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--post-mortem")? {
            opts.post_mortem = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--post-mortem-depth")? {
            opts.post_mortem_depth = match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => return Err(format!("bad post-mortem depth: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--heartbeat")? {
            opts.heartbeat_secs = match v.parse::<f64>() {
                Ok(s) if s > 0.0 => Some(s),
                _ => return Err(format!("bad heartbeat (sim-secs): {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--shards")? {
            opts.shards = v
                .parse::<usize>()
                .map_err(|_| format!("bad shard count: {v}"))?;
        }
        if let Some(v) = take_value(&mut args, "--checkpoint-every")? {
            opts.checkpoint_every = Some(phantom_cli::CheckpointEvery::parse(&v)?);
        }
        if let Some(v) = take_value(&mut args, "--checkpoint-dir")? {
            opts.checkpoint_dir = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--until")? {
            until = match v.parse::<f64>() {
                Ok(ms) if ms >= 0.0 => Some(phantom_sim::SimTime((ms * 1e6).round() as u64)),
                _ => return Err(format!("bad until (ms): {v}")),
            };
        }
        Ok(())
    })();
    if let Err(e) = flags {
        eprintln!("error: {e}");
        return usage();
    }

    let (cmd, path, extra) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, extra] => (cmd.as_str(), path.as_str(), Some(extra.clone())),
        _ => return usage(),
    };
    // `resume` takes a checkpoint file, not an input file — and a
    // checkpoint also starts with `{`, so this must branch before the
    // scene-vs-DSL sniff below.
    if cmd == "resume" {
        // A checkpoint records the serial engine's exact calendar state;
        // resuming it sharded would splice two different deterministic
        // interleavings into one trace.
        if opts.shards > 0 {
            eprintln!(
                "error: --shards is not yet compatible with resume: a checkpointed run \
                 must continue on the serial engine; drop --shards"
            );
            return ExitCode::FAILURE;
        }
        return match phantom_cli::resume(Path::new(path), until, &opts) {
            Ok(outcome) => {
                print!("{}", outcome.rendered);
                println!(
                    "   [resumed from {path}: {} events total, {} drops, peak queue {}]",
                    outcome.events, outcome.counters.drops, outcome.counters.queue_peak
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Checkpoints embed the original input so `phantom resume` can
    // rebuild the topology without the file.
    opts.checkpoint_source = input.clone();
    if json_check && cmd != "check" {
        eprintln!("error: --json applies to `phantom check`");
        return ExitCode::FAILURE;
    }
    // A scene document starts with `{`; the topology DSL never does.
    if input.trim_start().starts_with('{') {
        return scene_command(cmd, path, &input, seed, analyze, json_check, &opts);
    }
    if analyze {
        eprintln!("error: --analyze applies to scene files; for traces use `phantom analyze`");
        return ExitCode::FAILURE;
    }
    let mut spec = match parse_str(&input) {
        Ok(s) => s,
        Err(e) => {
            if json_check {
                println!("{}", check_error_json(path, &e.to_string()));
            }
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = seed {
        spec.seed = seed;
    }
    opts.scenario = path.to_string();
    let outcome = match cmd {
        "check" => {
            if json_check {
                println!(
                    "{}",
                    Json::Obj(vec![
                        ("schema".into(), Json::Str("phantom-check/1".into())),
                        ("ok".into(), Json::Bool(true)),
                        ("file".into(), Json::Str(path.into())),
                        ("switches".into(), Json::Num(spec.switches.len() as f64)),
                        ("trunks".into(), Json::Num(spec.trunks.len() as f64)),
                        ("sessions".into(), Json::Num(spec.sessions.len() as f64)),
                    ])
                    .dump()
                );
            } else {
                println!(
                    "{path}: ok ({} switches, {} trunks, {} sessions)",
                    spec.switches.len(),
                    spec.trunks.len(),
                    spec.sessions.len()
                );
            }
            Ok(())
        }
        "predict" => predict(&spec).map(|text| print!("{text}")),
        "compare" => compare_algorithms(&spec, jobs).map(|t| print!("{}", t.render())),
        "run" => run_spec_opts(&spec, &opts).map(|report| print!("{}", report.render(&spec))),
        "sweep" => {
            let spec_list = extra.unwrap_or_else(|| "2,5,10".to_string());
            let us: Result<Vec<f64>, _> = spec_list
                .split(',')
                .map(|x| x.trim().parse::<f64>())
                .collect();
            match us {
                Ok(us) => sweep_u(&spec, &us, jobs).map(|t| print!("{}", t.render())),
                Err(_) => Err(format!("bad u list: {spec_list}")),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `phantom serve`: run the phantom-serve daemon in the foreground
/// until SIGTERM drains it (then exit 0).
fn serve_command(mut args: Vec<String>) -> ExitCode {
    let parsed = (|| -> Result<phantom_serve::ServerConfig, String> {
        let mut cfg = phantom_serve::ServerConfig {
            listen: DEFAULT_SERVER.to_string(),
            ..phantom_serve::ServerConfig::default()
        };
        if let Some(v) = take_value(&mut args, "--listen")? {
            cfg.listen = v;
        }
        if let Some(v) = take_value(&mut args, "--workers")? {
            cfg.workers = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad workers: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--queue")? {
            cfg.queue_cap = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad queue: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--spool")? {
            cfg.spool = Some(PathBuf::from(v));
        }
        if args.len() != 1 {
            return Err(format!("unexpected arguments: {}", args[1..].join(" ")));
        }
        Ok(cfg)
    })();
    let cfg = match parsed {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match phantom_serve::serve(cfg, true) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `phantom submit`: POST a scene to a running daemon; `--storm N`
/// floods N copies through the bounded queue and reports what the
/// admission control did.
fn submit_command(mut args: Vec<String>) -> ExitCode {
    let parsed = (|| -> Result<(String, Option<u64>, Option<usize>), String> {
        let server = take_value(&mut args, "--server")?.unwrap_or_else(|| DEFAULT_SERVER.into());
        let seed = match take_value(&mut args, "--seed")? {
            Some(v) => Some(v.parse::<u64>().map_err(|_| format!("bad seed: {v}"))?),
            None => None,
        };
        let storm = match take_value(&mut args, "--storm")? {
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => return Err(format!("bad storm count: {v}")),
            },
            None => None,
        };
        Ok((server, seed, storm))
    })();
    let (server, seed, storm) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let [_, path] = args.as_slice() else {
        return usage();
    };
    let scene_text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = storm {
        let seed0 = seed.unwrap_or(phantom_serve::DEFAULT_SEED);
        return match phantom_serve::client::storm(&server, &scene_text, n, seed0) {
            Ok(report) => {
                let done = report
                    .final_states
                    .iter()
                    .filter(|(_, s)| s == "done")
                    .count();
                println!(
                    "storm: {} submitted, {} admitted ({} retries after 429), {} done, \
                     {} dropped, {} server errors, peak queue depth {}",
                    n,
                    report.admitted.len(),
                    report.retries_429,
                    done,
                    report.dropped,
                    report.server_errors,
                    report.depth_samples.iter().copied().max().unwrap_or(0),
                );
                if report.dropped == 0 && report.server_errors == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match phantom_serve::client::submit(&server, &scene_text, seed) {
        Ok(resp) => {
            let body = String::from_utf8_lossy(&resp.body);
            if resp.status == 202 {
                println!("{}", body.trim_end());
                ExitCode::SUCCESS
            } else {
                eprintln!("error: server answered {}: {}", resp.status, body.trim());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `phantom jobs`: list jobs, or inspect/cancel one (`--cancel`,
/// `--trace-out F` to save the streamed trace, `--analysis` for the
/// report). Unknown ids surface the server's edit-distance hint.
fn jobs_command(mut args: Vec<String>) -> ExitCode {
    let parsed = (|| -> Result<(String, bool, Option<String>, bool), String> {
        let server = take_value(&mut args, "--server")?.unwrap_or_else(|| DEFAULT_SERVER.into());
        let cancel = take_switch(&mut args, "--cancel");
        let trace_out = take_value(&mut args, "--trace-out")?;
        let analysis = take_switch(&mut args, "--analysis");
        Ok((server, cancel, trace_out, analysis))
    })();
    let (server, cancel, trace_out, analysis) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let id = match args.as_slice() {
        [_] => None,
        [_, id] => Some(id.clone()),
        _ => return usage(),
    };
    let Some(id) = id else {
        if cancel || trace_out.is_some() || analysis {
            eprintln!("error: --cancel/--trace-out/--analysis need a job id");
            return ExitCode::FAILURE;
        }
        return match phantom_serve::client::list(&server) {
            Ok(resp) if resp.status == 200 => {
                println!("{}", String::from_utf8_lossy(&resp.body).trim_end());
                ExitCode::SUCCESS
            }
            Ok(resp) => {
                eprintln!(
                    "error: server answered {}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body).trim()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    };
    let outcome = (|| -> Result<(), String> {
        if cancel {
            let resp = phantom_serve::client::cancel(&server, &id)?;
            let body = String::from_utf8_lossy(&resp.body).trim_end().to_string();
            if resp.status != 200 {
                return Err(format!("server answered {}: {}", resp.status, body));
            }
            println!("{body}");
        }
        if let Some(out) = &trace_out {
            let bytes = phantom_serve::client::fetch_trace(&server, &id)?;
            std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!("wrote {} trace bytes to {out}", bytes.len());
        }
        if analysis {
            let resp = phantom_serve::client::fetch_analysis(&server, &id)?;
            let body = String::from_utf8_lossy(&resp.body).trim_end().to_string();
            if resp.status != 200 {
                return Err(format!("server answered {}: {}", resp.status, body));
            }
            println!("{body}");
        }
        if !cancel && trace_out.is_none() && !analysis {
            let resp = phantom_serve::client::job_record(&server, &id)?;
            let body = String::from_utf8_lossy(&resp.body).trim_end().to_string();
            if resp.status != 200 {
                return Err(format!("server answered {}: {}", resp.status, body));
            }
            println!("{body}");
        }
        Ok(())
    })();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
