//! `phantom` — simulate a topology file.
//!
//! ```text
//! phantom run <file>        simulate and report
//! phantom predict <file>    closed-form phantom fixed point (no simulation)
//! phantom check <file>      parse + validate only
//! ```

use phantom_cli::{compare_algorithms, parse_str, predict, run_spec, sweep_u};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: phantom <run|predict|check> <topology-file>");
    eprintln!("       phantom sweep <topology-file> <u,u,...>   # e.g. sweep t.phantom 2,5,10");
    eprintln!("       phantom compare <topology-file>           # every algorithm, one table");
    eprintln!("       ... [--jobs N]                            # parallel sweep/compare runs");
    eprintln!();
    eprintln!("topology file format:");
    eprintln!("  switch <name>");
    eprintln!("  trunk <a> <b> <rate: 150mbps> <prop: 10us>");
    eprintln!("  session <sw>... <greedy|window|onoff|random> [start=|stop=|on=|off=|rtt=]");
    eprintln!("  cbr <sw>... <rate> [on=|off=|rtt=]        # unresponsive background");
    eprintln!("  priority cbr                              # strict-priority CBR queues");
    eprintln!("  algorithm <phantom|phantom-ni|eprca|aprc|capc|erica> [u=5]");
    eprintln!("  run <duration: 500ms> [seed=1996]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 1usize;
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        if i + 1 >= args.len() {
            eprintln!("error: --jobs needs a value");
            return usage();
        }
        match args[i + 1].parse::<usize>() {
            Ok(n) if n >= 1 => jobs = n,
            _ => {
                eprintln!("error: bad jobs: {}", args[i + 1]);
                return usage();
            }
        }
        args.drain(i..=i + 1);
    }
    let (cmd, path, extra) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, extra] => (cmd.as_str(), path.as_str(), Some(extra.clone())),
        _ => return usage(),
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_str(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cmd {
        "check" => {
            println!(
                "{path}: ok ({} switches, {} trunks, {} sessions)",
                spec.switches.len(),
                spec.trunks.len(),
                spec.sessions.len()
            );
            Ok(())
        }
        "predict" => predict(&spec).map(|text| print!("{text}")),
        "compare" => compare_algorithms(&spec, jobs).map(|t| print!("{}", t.render())),
        "run" => run_spec(&spec).map(|report| print!("{}", report.render(&spec))),
        "sweep" => {
            let spec_list = extra.unwrap_or_else(|| "2,5,10".to_string());
            let us: Result<Vec<f64>, _> = spec_list
                .split(',')
                .map(|x| x.trim().parse::<f64>())
                .collect();
            match us {
                Ok(us) => sweep_u(&spec, &us, jobs).map(|t| print!("{}", t.render())),
                Err(_) => Err(format!("bad u list: {spec_list}")),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
