//! `phantom` — simulate a topology or scene file.
//!
//! ```text
//! phantom run <file>        simulate and report (topology DSL or scene JSON)
//! phantom predict <file>    closed-form phantom fixed point (no simulation)
//! phantom check <file>      parse + validate only
//! phantom list              built-in experiments + committed scene files
//! phantom trace-lint <file.jsonl>   validate a trace artifact
//! phantom analyze <file.jsonl>      trace -> phantom-analysis/1 report
//! ```
//!
//! A file whose first non-blank byte is `{` is treated as a
//! `phantom-scene/1` document (declarative topology + workload +
//! mid-run timeline); anything else is the line-oriented topology DSL.

use phantom_analyze::{analyze_trace_str, lint_trace_str, AnalysisTargets, LintError};
use phantom_cli::{
    compare_algorithms, parse_str, predict, run_scene_opts, run_spec_opts, sweep_u, RunOptions,
};
use phantom_scenarios::registry::all_experiments;
use phantom_scenarios::shape::targets_for;
use phantom_scene::{load_scene_dir, parse_scene};
use phantom_sim::probe::KindSet;
use std::path::PathBuf;
use std::process::ExitCode;

/// Seed for scene runs when `--seed` is not given (the sweep default).
const DEFAULT_SCENE_SEED: u64 = 1996;

/// `trace-lint` exit code for a structurally invalid trace.
const EXIT_INVALID: u8 = 1;
/// `trace-lint` exit code for a trace whose final line was cut short
/// (e.g. the producer died mid-write) — distinct so callers can retry.
const EXIT_TRUNCATED: u8 = 2;

fn usage() -> ExitCode {
    eprintln!("usage: phantom <run|predict|check> <topology-file|scene.json>");
    eprintln!("       phantom list [--scenes DIR]               # experiments + scene files");
    eprintln!("       phantom sweep <topology-file> <u,u,...>   # e.g. sweep t.phantom 2,5,10");
    eprintln!("       phantom compare <topology-file>           # every algorithm, one table");
    eprintln!("       phantom trace-lint <file.jsonl>           # validate a trace artifact");
    eprintln!("                                                 # exit 1 invalid, 2 truncated");
    eprintln!("       phantom analyze <file.jsonl> [--window MS] [--out F.json]");
    eprintln!("                                                 # phantom-analysis/1 report");
    eprintln!("       ... [--jobs N]                            # parallel sweep/compare runs");
    eprintln!("       ... [--seed N]                            # override the run seed");
    eprintln!("       run ... [--trace F.jsonl] [--trace-filter KINDS]  # JSONL event trace");
    eprintln!("       run ... [--metrics F.prom]                # metrics snapshot + F.prom.json");
    eprintln!("       run ... [-v]                              # progress heartbeat on stderr");
    eprintln!("       run <scene.json> [--analyze]              # live phantom-analysis/1 report");
    eprintln!();
    eprintln!("scene file format: phantom-scene/1 JSON — see schemas/phantom-scene-v1.md");
    eprintln!();
    eprintln!("topology file format:");
    eprintln!("  switch <name>");
    eprintln!("  trunk <a> <b> <rate: 150mbps> <prop: 10us>");
    eprintln!("  session <sw>... <greedy|window|onoff|random> [start=|stop=|on=|off=|rtt=]");
    eprintln!("  cbr <sw>... <rate> [on=|off=|rtt=]        # unresponsive background");
    eprintln!("  priority cbr                              # strict-priority CBR queues");
    eprintln!("  algorithm <phantom|phantom-ni|eprca|aprc|capc|erica> [u=5]");
    eprintln!("  run <duration: 500ms> [seed=1996]");
    ExitCode::FAILURE
}

/// Remove `flag <value>` from `args`, returning the value if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Remove a bare `flag` from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Dispatch a `phantom-scene/1` file: `check` validates, `run`
/// simulates (with the usual trace/metrics options and an optional
/// live analysis report against the scene's own declared targets).
fn scene_command(
    cmd: &str,
    path: &str,
    input: &str,
    seed: Option<u64>,
    analyze: bool,
    opts: &RunOptions,
) -> ExitCode {
    let scene = match parse_scene(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed = seed.unwrap_or(DEFAULT_SCENE_SEED);
    match cmd {
        "check" => {
            if let Some(generate) = &scene.generate {
                // Generated scenes declare no explicit lists; report the
                // shape the generator will expand to.
                println!(
                    "{path}: ok (scene `{}`: generated, {} trunks, {} sessions, {} timeline events)",
                    scene.id,
                    generate.n_trunks(),
                    generate.n_sessions(),
                    scene.timeline.len()
                );
            } else {
                println!(
                    "{path}: ok (scene `{}`: {} switches, {} trunks, {} sessions, {} timeline events)",
                    scene.id,
                    scene.switches.len(),
                    scene.trunks.len(),
                    scene.sessions.len(),
                    scene.timeline.len()
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let window = analyze.then_some(phantom_analyze::DEFAULT_WINDOW_SECS);
            match run_scene_opts(&scene, seed, window, opts) {
                Ok(report) => {
                    print!("{}", report.result.render(60));
                    println!(
                        "   [scene {}, seed {}, {} events, {} drops, peak queue {}]",
                        scene.id,
                        seed,
                        report.events,
                        report.counters.drops,
                        report.counters.queue_peak
                    );
                    if let Some(a) = report.analysis {
                        print!("{}", a.to_json());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: `{other}` takes a topology file; scene files support run and check");
            ExitCode::FAILURE
        }
    }
}

/// `phantom list`: the built-in experiment registry, then any scene
/// files in `--scenes DIR` (default `scenes/`, skipped silently when
/// the default directory does not exist).
fn list(scenes_dir: Option<&str>) -> ExitCode {
    println!("built-in experiments (run with `repro <id>`):");
    for e in all_experiments() {
        println!("  {:8} {}", e.id, e.describe);
    }
    let (dir, explicit) = match scenes_dir {
        Some(d) => (PathBuf::from(d), true),
        None => (PathBuf::from("scenes"), false),
    };
    if !dir.is_dir() {
        if explicit {
            eprintln!("error: {}: not a directory", dir.display());
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    match load_scene_dir(&dir) {
        Ok(scenes) => {
            println!();
            println!(
                "scene files in {} (run with `phantom run <file>` or `repro <id> --scenes {}`):",
                dir.display(),
                dir.display()
            );
            for s in &scenes {
                println!("  {:8} {}", s.id, s.describe);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Full validation of a JSONL trace: the manifest and every event line
/// must parse under the exact `phantom-trace/1` grammar. A trace with a
/// manifest and no events is valid (exit 0); a trace whose final line
/// was cut mid-record gets its own exit code so producers that died
/// mid-write are distinguishable from corrupt data.
fn trace_lint(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(EXIT_INVALID);
        }
    };
    match lint_trace_str(&text) {
        Ok(events) => {
            println!("{path}: ok (manifest + {events} events)");
            ExitCode::SUCCESS
        }
        Err(LintError::Truncated { line, msg }) => {
            eprintln!("error: {path}:{line}: truncated: {msg}");
            ExitCode::from(EXIT_TRUNCATED)
        }
        Err(LintError::Invalid { line, msg }) => {
            eprintln!("error: {path}:{line}: {msg}");
            ExitCode::from(EXIT_INVALID)
        }
    }
}

/// `phantom analyze`: stream a trace file into a `phantom-analysis/1`
/// report, using the per-figure expected-shape table when the trace's
/// manifest names a known scenario.
fn analyze(path: &str, window_secs: Option<f64>, out: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let manifest = phantom_analyze::jsonl::parse_manifest_line(
        text.lines()
            .next()
            .ok_or_else(|| format!("{path}: empty file"))?,
    )
    .map_err(|e| format!("{path}:1: {e}"))?;
    let targets: AnalysisTargets = targets_for(&manifest.scenario);
    let window = window_secs.unwrap_or(phantom_analyze::DEFAULT_WINDOW_SECS);
    let report = analyze_trace_str(&text, targets, window).map_err(|e| format!("{path}: {e}"))?;
    let json = report.to_json();
    match out {
        Some(f) => std::fs::write(f, &json).map_err(|e| format!("cannot write {f}: {e}"))?,
        None => print!("{json}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("list") {
        let scenes = match take_value(&mut args, "--scenes") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        if args.len() != 1 {
            return usage();
        }
        return list(scenes.as_deref());
    }

    if args.first().map(String::as_str) == Some("trace-lint") {
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return trace_lint(path);
    }

    if args.first().map(String::as_str) == Some("analyze") {
        let parsed = (|| -> Result<(Option<f64>, Option<String>), String> {
            let window = match take_value(&mut args, "--window")? {
                Some(v) => match v.parse::<f64>() {
                    Ok(ms) if ms > 0.0 => Some(ms / 1e3),
                    _ => return Err(format!("bad window (ms): {v}")),
                },
                None => None,
            };
            Ok((window, take_value(&mut args, "--out")?))
        })();
        let (window, out) = match parsed {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        let [_, path] = args.as_slice() else {
            return usage();
        };
        return match analyze(path, window, out.as_deref()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut jobs = 1usize;
    let mut seed: Option<u64> = None;
    let analyze = take_switch(&mut args, "--analyze");
    let mut opts = RunOptions {
        verbose: take_switch(&mut args, "-v"),
        ..RunOptions::default()
    };
    let flags = (|| -> Result<(), String> {
        if let Some(v) = take_value(&mut args, "--jobs")? {
            jobs = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("bad jobs: {v}")),
            };
        }
        if let Some(v) = take_value(&mut args, "--seed")? {
            seed = Some(v.parse::<u64>().map_err(|_| format!("bad seed: {v}"))?);
        }
        if let Some(v) = take_value(&mut args, "--trace")? {
            opts.trace = Some(PathBuf::from(v));
        }
        if let Some(v) = take_value(&mut args, "--trace-filter")? {
            opts.trace_filter = KindSet::parse(&v)?;
        }
        if let Some(v) = take_value(&mut args, "--metrics")? {
            opts.metrics = Some(PathBuf::from(v));
        }
        Ok(())
    })();
    if let Err(e) = flags {
        eprintln!("error: {e}");
        return usage();
    }

    let (cmd, path, extra) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, extra] => (cmd.as_str(), path.as_str(), Some(extra.clone())),
        _ => return usage(),
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A scene document starts with `{`; the topology DSL never does.
    if input.trim_start().starts_with('{') {
        return scene_command(cmd, path, &input, seed, analyze, &opts);
    }
    if analyze {
        eprintln!("error: --analyze applies to scene files; for traces use `phantom analyze`");
        return ExitCode::FAILURE;
    }
    let mut spec = match parse_str(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = seed {
        spec.seed = seed;
    }
    opts.scenario = path.to_string();
    let outcome = match cmd {
        "check" => {
            println!(
                "{path}: ok ({} switches, {} trunks, {} sessions)",
                spec.switches.len(),
                spec.trunks.len(),
                spec.sessions.len()
            );
            Ok(())
        }
        "predict" => predict(&spec).map(|text| print!("{text}")),
        "compare" => compare_algorithms(&spec, jobs).map(|t| print!("{}", t.render())),
        "run" => run_spec_opts(&spec, &opts).map(|report| print!("{}", report.render(&spec))),
        "sweep" => {
            let spec_list = extra.unwrap_or_else(|| "2,5,10".to_string());
            let us: Result<Vec<f64>, _> = spec_list
                .split(',')
                .map(|x| x.trim().parse::<f64>())
                .collect();
            match us {
                Ok(us) => sweep_u(&spec, &us, jobs).map(|t| print!("{}", t.render())),
                Err(_) => Err(format!("bad u list: {spec_list}")),
            }
        }
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
