//! PR 8 acceptance: deterministic time-travel.
//!
//! The hard contract under test: a run interrupted at a checkpoint and
//! resumed produces a trace suffix byte-identical to the uninterrupted
//! run — same report, same analysis — and `phantom diverge` localizes an
//! injected perturbation to its first differing event.

use phantom_cli::exec::CheckpointEvery;
use phantom_cli::{diverge, resume, run_scene_opts, DivergeOptions, DivergeOutcome, RunOptions};
use phantom_scene::{analysis_targets, parse_scene, Scene};
use std::path::{Path, PathBuf};

fn scenes_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenes")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phantom-tt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn load_scene(file: &str) -> (Scene, String) {
    let text = std::fs::read_to_string(scenes_dir().join(file)).unwrap();
    (parse_scene(&text).unwrap(), text)
}

/// The full resume contract for one scene:
///
/// 1. checkpointing never perturbs the run (trace bytes + report equal
///    to an uncheckpointed run);
/// 2. resuming from a mid-run checkpoint writes a suffix that stitches
///    byte-identically onto the uninterrupted trace's prefix;
/// 3. the resumed report and the re-analyzed stitched trace match the
///    uninterrupted run's.
fn assert_resume_contract(file: &str, every: CheckpointEvery) {
    let (scene, source) = load_scene(file);
    let seed = 1996;
    let dir = tmp(&scene.id.clone());
    let window = phantom_analyze::DEFAULT_WINDOW_SECS;

    // Uninterrupted reference run, traced + live-analyzed.
    let full_trace = dir.join("full.jsonl");
    let plain = run_scene_opts(
        &scene,
        seed,
        Some(window),
        &RunOptions {
            trace: Some(full_trace.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let full_bytes = std::fs::read(&full_trace).unwrap();
    let want_render = plain.result.render(0);
    let want_analysis = plain.analysis.as_ref().unwrap().to_json();

    // Checkpointed run: byte-identical trace and report.
    let ck_trace = dir.join("checkpointed.jsonl");
    let ck_dir = dir.join("ckpts");
    let checkpointed = run_scene_opts(
        &scene,
        seed,
        None,
        &RunOptions {
            trace: Some(ck_trace.clone()),
            checkpoint_every: Some(every),
            checkpoint_dir: Some(ck_dir.clone()),
            checkpoint_source: source.clone(),
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        std::fs::read(&ck_trace).unwrap(),
        full_bytes,
        "{file}: checkpointing must not perturb the trace"
    );
    assert_eq!(
        checkpointed.result.render(0),
        want_render,
        "{file}: checkpointing must not perturb the report"
    );
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(&ck_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    ckpts.sort(); // zero-padded names: lexical order is sim order
    assert!(
        ckpts.len() >= 2,
        "{file}: expected several checkpoints, got {}",
        ckpts.len()
    );

    // Resume from a mid-run checkpoint; the suffix must stitch onto the
    // uninterrupted prefix byte-for-byte.
    let mid = &ckpts[ckpts.len() / 2];
    let doc = phantom_cli::read_checkpoint(mid).unwrap();
    assert!(doc.trace_offset > 0 && (doc.trace_offset as usize) < full_bytes.len());
    let suffix = dir.join("suffix.jsonl");
    let outcome = resume(
        mid,
        None,
        &RunOptions {
            trace: Some(suffix.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let mut stitched = full_bytes[..doc.trace_offset as usize].to_vec();
    stitched.extend_from_slice(&std::fs::read(&suffix).unwrap());
    assert_eq!(
        stitched, full_bytes,
        "{file}: stitched trace must equal the uninterrupted trace"
    );
    assert_eq!(
        outcome.rendered, want_render,
        "{file}: resumed report must equal the uninterrupted report"
    );
    assert_eq!(outcome.events, plain.events, "{file}: total event count");

    // Re-analyzing the stitched trace reproduces the live analysis.
    let stitched_analysis = phantom_analyze::analyze_trace_str(
        std::str::from_utf8(&stitched).unwrap(),
        analysis_targets(&scene),
        window,
    )
    .unwrap();
    assert_eq!(
        stitched_analysis.to_json(),
        want_analysis,
        "{file}: stitched-trace analysis must equal the live analysis"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_contract_fig2() {
    assert_resume_contract("fig2.json", CheckpointEvery::SimSecs(0.1));
}

#[test]
fn resume_contract_fig4() {
    assert_resume_contract("fig4.json", CheckpointEvery::SimSecs(0.2));
}

#[test]
fn resume_contract_fig6() {
    // Event-count cadence on one scene so both boundary kinds are
    // exercised end to end.
    assert_resume_contract("fig6.json", CheckpointEvery::Events(200_000));
}

#[test]
fn resume_contract_churn() {
    // Mid-run dynamic events (joins at 300 ms, leaves at 600 ms) must
    // survive the checkpoint round-trip like everything else.
    assert_resume_contract("churn.json", CheckpointEvery::SimSecs(0.2));
}

/// The `--jobs 1` vs `--jobs 4` half of the acceptance: four resumes of
/// the same checkpoint running concurrently (probes and telemetry are
/// thread-local) must each produce output byte-identical to a serial
/// resume.
#[test]
fn concurrent_resumes_match_serial() {
    let (scene, source) = load_scene("churn.json");
    let dir = tmp("jobs");
    let ck_dir = dir.join("ckpts");
    run_scene_opts(
        &scene,
        1996,
        None,
        &RunOptions {
            checkpoint_every: Some(CheckpointEvery::SimSecs(0.3)),
            checkpoint_dir: Some(ck_dir.clone()),
            checkpoint_source: source,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(&ck_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    ckpts.sort();
    let mid = ckpts[ckpts.len() / 2].clone();

    let serial_suffix = dir.join("serial.jsonl");
    let serial = resume(
        &mid,
        None,
        &RunOptions {
            trace: Some(serial_suffix.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();
    let serial_bytes = std::fs::read(&serial_suffix).unwrap();

    let results: Vec<_> = std::thread::scope(|s| {
        (0..4)
            .map(|i| {
                let mid = mid.clone();
                let suffix = dir.join(format!("par-{i}.jsonl"));
                s.spawn(move || {
                    let out = resume(
                        &mid,
                        None,
                        &RunOptions {
                            trace: Some(suffix.clone()),
                            ..RunOptions::default()
                        },
                    )
                    .unwrap();
                    (out, std::fs::read(&suffix).unwrap())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for (out, bytes) in results {
        assert_eq!(
            out.rendered, serial.rendered,
            "reports must not depend on jobs"
        );
        assert_eq!(out.events, serial.events);
        assert_eq!(bytes, serial_bytes, "suffix traces must not depend on jobs");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The million-session scene, same contract. Ignored by default: it is
/// minutes of debug-build wall time. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "large scene; run explicitly"]
fn resume_contract_metro_chain_10k() {
    // The metro scene simulates 200 ms, so checkpoint at 50 ms.
    assert_resume_contract("metro/metro-chain-10k.json", CheckpointEvery::SimSecs(0.05));
}

const DUMBBELL_A: &str = r#"{
    "schema": "phantom-scene/1",
    "id": "tt-diverge",
    "describe": "divergence-injection twin A",
    "algorithm": "phantom",
    "duration_ms": 300,
    "switches": ["s1", "s2"],
    "trunks": [{"a": "s1", "b": "s2", "mbps": 150, "prop_us": 10}],
    "sessions": [
        {"id": "g0", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}},
        {"id": "g1", "path": ["s1", "s2"], "traffic": {"kind": "greedy"}}
    ],
    "bottleneck": 0,
    "analysis": {"n_sessions": 2}
}"#;

/// `phantom diverge` must call two identical-seed runs identical, and
/// localize an injected single-parameter perturbation (`alpha_dec`
/// 0.25 -> 0.26 on the bottleneck trunk) to its first differing event —
/// with the engine-state diff when run A's checkpoints are at hand.
#[test]
fn diverge_localizes_an_injected_perturbation() {
    let dir = tmp("diverge");
    let scene_a = parse_scene(DUMBBELL_A).unwrap();
    let perturbed_src =
        DUMBBELL_A.replace("\"prop_us\": 10}", "\"prop_us\": 10, \"alpha_dec\": 0.26}");
    let scene_b = parse_scene(&perturbed_src).unwrap();

    let trace_a = dir.join("a.jsonl");
    let trace_b = dir.join("b.jsonl");
    let ck_dir = dir.join("ckpts");
    run_scene_opts(
        &scene_a,
        7,
        None,
        &RunOptions {
            trace: Some(trace_a.clone()),
            checkpoint_every: Some(CheckpointEvery::SimSecs(0.01)),
            checkpoint_dir: Some(ck_dir.clone()),
            checkpoint_source: DUMBBELL_A.to_string(),
            ..RunOptions::default()
        },
    )
    .unwrap();
    run_scene_opts(
        &scene_b,
        7,
        None,
        &RunOptions {
            trace: Some(trace_b.clone()),
            ..RunOptions::default()
        },
    )
    .unwrap();

    // Identical traces: exit path 0.
    let (same, report) = diverge(&trace_a, &trace_a, &DivergeOptions::default()).unwrap();
    assert!(matches!(same, DivergeOutcome::Identical { .. }));
    assert!(report.contains("\"identical\":true"), "{report}");

    // Perturbed twin: first divergence found, context retained, and the
    // checkpoint-backed engine-state diff produced.
    let (out, report) = diverge(
        &trace_a,
        &trace_b,
        &DivergeOptions {
            context: 4,
            checkpoints: Some(ck_dir),
        },
    )
    .unwrap();
    let DivergeOutcome::Diverged { line } = out else {
        panic!("perturbed twin must diverge");
    };
    assert!(line > 1, "the manifest lines match");
    assert!(report.contains("\"identical\":false"), "{report}");
    assert!(
        report.contains("\"record\":\"first-divergence\""),
        "{report}"
    );
    assert!(report.contains("\"record\":\"context\""), "{report}");
    // The perturbation is the decrease factor, so the first differing
    // event is a MACR update (embedded as an escaped JSON string).
    assert!(report.contains("\\\"kind\\\":\\\"macr\\\""), "{report}");
    assert!(report.contains("\"record\":\"checkpoint\""), "{report}");
    assert!(report.contains("\"record\":\"replay\""), "{report}");
    assert!(report.contains("\"record\":\"summary\""), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (f): `phantom status --watch` must treat a status file
/// vanishing mid-watch as a normal end of run, not an error.
#[test]
fn status_watch_survives_file_removal() {
    let dir = tmp("watch");
    let path = dir.join("run.status.json");
    let status = phantom_metrics::RunStatus::starting("tt-watch", 7, 100, "slices");
    status.write(&path).unwrap();

    let child = std::process::Command::new(env!("CARGO_BIN_EXE_phantom"))
        .args(["status", path.to_str().unwrap(), "--watch"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Let the watcher read the file at least once (it polls every
    // second), then yank it.
    std::thread::sleep(std::time::Duration::from_millis(1500));
    std::fs::remove_file(&path).unwrap();

    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "watch must exit cleanly: {:?}\nstdout: {stdout}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("tt-watch"), "{stdout}");
    assert!(stdout.contains("run ended"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
