//! Property-based tests of the simulation kernel's invariants.

use phantom_sim::event::EventQueue;
use phantom_sim::fifo::{BoundedFifo, EnqueueResult};
use phantom_sim::rng::derive_seed;
use phantom_sim::stats::{Histogram, TimeSeries, TimeWeighted};
use phantom_sim::{Ctx, Engine, Node, NodeId, SimTime};
use proptest::prelude::*;

/// Minimal arena occupants for the id-stability property: three
/// distinct concrete types so adds interleave across three arenas.
struct TallyA {
    tag: u64,
    seen: u64,
}
struct TallyB {
    tag: u64,
    seen: u64,
}
struct TallyC {
    tag: u64,
    seen: u64,
}

macro_rules! tally_node {
    ($t:ty) => {
        impl Node<u64> for $t {
            fn on_event(&mut self, _ctx: &mut Ctx<'_, u64>, msg: u64) {
                self.seen += msg;
            }
        }
    };
}
tally_node!(TallyA);
tally_node!(TallyB);
tally_node!(TallyC);

proptest! {
    /// Events always pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), NodeId(0), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt);
                if ev.time == lt {
                    prop_assert!(ev.msg > li, "FIFO violated among equal timestamps");
                }
            }
            last = Some((ev.time, ev.msg));
        }
    }

    /// FIFO conservation: arrivals = departures + drops + still queued,
    /// and order is preserved.
    #[test]
    fn fifo_conservation(
        cap in 1usize..50,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut q = BoundedFifo::new(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for push in ops {
            if push {
                let r = q.push(next);
                if r == EnqueueResult::Accepted {
                    model.push_back(next);
                }
                next += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert!(q.len() <= cap);
        prop_assert_eq!(q.arrivals(), q.departures() + q.drops() + q.len() as u64);
    }

    /// The time-weighted mean always lies within [min, max] of the
    /// values the signal took (including the initial 0).
    #[test]
    fn time_weighted_mean_bounded(
        vals in proptest::collection::vec(0.0f64..1000.0, 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        for &v in &vals {
            t += 1_000_000; // 1 ms steps
            tw.set(SimTime(t), v);
        }
        let end = SimTime(t + 1_000_000);
        let mean = tw.mean_until(end);
        let lo = vals.iter().copied().fold(0.0, f64::min);
        let hi = vals.iter().copied().fold(0.0, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} not in [{lo}, {hi}]");
    }

    /// Histogram quantiles are monotone in q and bounded by the max.
    #[test]
    fn histogram_quantiles_monotone(
        vals in proptest::collection::vec(0.0f64..100.0, 1..200),
    ) {
        let mut h = Histogram::new(1.0, 64);
        for &v in &vals {
            h.record(v);
        }
        let qs = [0.1, 0.5, 0.9, 0.99, 1.0];
        let mut last = 0.0;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last - 1e-12, "quantiles must be monotone");
            last = v;
        }
        prop_assert!(h.quantile(1.0) <= h.max() + 1.0);
    }

    /// Derived seeds never collide for distinct stream indices under the
    /// same master (within a practical range).
    #[test]
    fn derived_seeds_distinct(master in any::<u64>(), a in 0u64..4096, b in 0u64..4096) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(master, a), derive_seed(master, b));
    }

    /// Arena-backed node ids stay stable under churn: interleaved
    /// registration across multiple concrete types grows each typed
    /// arena independently (reallocating its Vec underneath), yet the
    /// `id → node` mapping never moves — messages scheduled against an
    /// id *before* later growth land on the same node *after* it.
    #[test]
    fn arena_ids_stable_under_interleaved_growth(
        kinds in proptest::collection::vec(0u8..3, 1..150),
    ) {
        let mut e = Engine::<u64>::new(7);
        let mut expect: Vec<(u8, u64)> = Vec::new();
        for (i, &k) in kinds.iter().enumerate() {
            let tag = i as u64;
            let id = match k {
                0 => e.add_node(TallyA { tag, seen: 0 }),
                1 => e.add_node(TallyB { tag, seen: 0 }),
                _ => e.add_node(TallyC { tag, seen: 0 }),
            };
            // Ids are dense in registration order, independent of type.
            prop_assert_eq!(id, NodeId(i));
            expect.push((k, tag));
            // Scheduled now, delivered only after every later add: the
            // id must survive all intervening arena reallocations.
            e.schedule(SimTime(i as u64 + 1), id, tag + 1);
        }
        e.run_until(SimTime(kinds.len() as u64 + 1));
        for (i, &(k, tag)) in expect.iter().enumerate() {
            let id = NodeId(i);
            let (got_tag, seen) = match k {
                0 => { let n = e.node::<TallyA>(id); (n.tag, n.seen) }
                1 => { let n = e.node::<TallyB>(id); (n.tag, n.seen) }
                _ => { let n = e.node::<TallyC>(id); (n.tag, n.seen) }
            };
            prop_assert_eq!(got_tag, tag, "id {} resolved to a different node", i);
            prop_assert_eq!(seen, tag + 1, "message to id {} was misdelivered", i);
        }
        let stats = e.arena_stats();
        prop_assert!(stats.len() <= 3);
        prop_assert_eq!(stats.iter().map(|s| s.nodes).sum::<usize>(), kinds.len());
        prop_assert_eq!(e.node_count(), kinds.len());
    }

    /// Sample-and-hold lookup returns exactly the last sample at or
    /// before the query time.
    #[test]
    fn time_series_value_at_consistent(
        pts in proptest::collection::vec(0u64..10_000, 1..100),
    ) {
        let mut times = pts.clone();
        times.sort_unstable();
        let mut ts = TimeSeries::new();
        for (i, &t) in times.iter().enumerate() {
            ts.push(SimTime(t * 1000), i as f64);
        }
        // query at each sample time must return that sample's value (the
        // last one pushed at that timestamp)
        for (i, &t) in times.iter().enumerate() {
            let got = ts.value_at(t as f64 * 1000.0 / 1e9).unwrap();
            // duplicates: value_at returns the last of the equal group
            let expect = times.iter().rposition(|&x| x == t).unwrap() as f64;
            prop_assert!(got == expect || got >= i as f64);
        }
        prop_assert!(ts.value_at(-1.0).is_none());
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore equivalence (PR 8)
// ---------------------------------------------------------------------------

use phantom_sim::{KvReader, KvWriter, SimDuration};
use rand::Rng;

/// ~33.6 ms: the timer wheel's near-future window. Delays beyond it land
/// in the far slab + overflow heap, which the snapshot must also carry.
const WHEEL_HORIZON_NS: u64 = 8192 * 4096;

/// A self-scheduling node that logs every delivery `(now_ns, msg)`,
/// consumes RNG words, and reschedules with a configured delay — so a
/// population of these exercises arbitrary interleavings of arenas,
/// wheel buckets and the far-future structures.
struct Pinger {
    /// Static config, rebuilt from scratch on restore: reschedule delay.
    delay_ns: u64,
    /// Static config: how many deliveries before this node goes quiet.
    limit: u32,
    // Dynamic state below — exactly what save/restore must carry.
    count: u32,
    log_t: Vec<u64>,
    log_m: Vec<u64>,
}

impl Pinger {
    fn new(delay_ns: u64, limit: u32) -> Self {
        Pinger {
            delay_ns,
            limit,
            count: 0,
            log_t: Vec::new(),
            log_m: Vec::new(),
        }
    }
}

/// A second concrete type with different dynamics (jittered delays), so
/// the engine holds at least two typed arenas and restore has to route
/// state back to the right one.
struct Jitterer {
    delay_ns: u64,
    limit: u32,
    count: u32,
    log_t: Vec<u64>,
    log_m: Vec<u64>,
}

macro_rules! checkpointed_pinger {
    ($t:ty, $jitter:expr) => {
        impl Node<u32> for $t {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
                self.count += 1;
                self.log_t.push(ctx.now().0);
                self.log_m.push(msg as u64);
                let draw = ctx.rng().gen::<u64>();
                if self.count < self.limit {
                    let jitter = if $jitter { draw % 10_000 } else { 0 };
                    ctx.send_self(SimDuration::from_nanos(self.delay_ns + jitter), msg + 1);
                }
            }

            fn save_state(&self, w: &mut KvWriter) -> Result<(), String> {
                w.u64("count", self.count as u64);
                w.u64_list("log_t", &self.log_t);
                w.u64_list("log_m", &self.log_m);
                Ok(())
            }

            fn restore_state(&mut self, r: &mut KvReader) -> Result<(), String> {
                self.count = r.u64("count")? as u32;
                self.log_t = r.u64_list("log_t")?;
                self.log_m = r.u64_list("log_m")?;
                Ok(())
            }
        }
    };
}
checkpointed_pinger!(Pinger, false);
checkpointed_pinger!(Jitterer, true);

/// Build an engine from a delay spec: `(is_jitterer, delay_ns)` per
/// node. Rebuilding from the same spec models the CLI's
/// rebuild-then-restore flow: static config comes from the source,
/// dynamics from the checkpoint.
fn build(seed: u64, spec: &[(bool, u64)], limit: u32) -> Engine<u32> {
    let mut e = Engine::new(seed);
    for &(jitter, delay_ns) in spec {
        let id = if jitter {
            e.add_node(Jitterer {
                delay_ns,
                limit,
                count: 0,
                log_t: Vec::new(),
                log_m: Vec::new(),
            })
        } else {
            e.add_node(Pinger::new(delay_ns, limit))
        };
        e.schedule(SimTime(delay_ns % 7), id, 0);
    }
    e
}

/// Every node's delivery log, in node order — the "trace" the contract
/// compares.
fn logs(e: &Engine<u32>, spec: &[(bool, u64)]) -> Vec<(u32, Vec<u64>, Vec<u64>)> {
    spec.iter()
        .enumerate()
        .map(|(i, &(jitter, _))| {
            let id = NodeId(i);
            if jitter {
                let n = e.node::<Jitterer>(id);
                (n.count, n.log_t.clone(), n.log_m.clone())
            } else {
                let n = e.node::<Pinger>(id);
                (n.count, n.log_t.clone(), n.log_m.clone())
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The resume contract at the kernel level: for an arbitrary mix of
    /// node types and timer horizons (microseconds up to multi-second
    /// far-future delays), snapshotting after an arbitrary number of
    /// events and restoring into a freshly built engine reproduces the
    /// uninterrupted run exactly — same per-node delivery logs, same
    /// final clock, same event count, and a byte-identical final
    /// snapshot.
    #[test]
    fn snapshot_restore_matches_uninterrupted_run(
        seed in 0u64..1_000_000,
        spec in proptest::collection::vec(
            (any::<bool>(), prop_oneof![
                1_000u64..50_000,                       // near: active run / wheel
                1_000_000u64..10_000_000,               // mid-wheel
                40_000_000u64..2_000_000_000,           // far slab + overflow heap
            ]),
            2..5,
        ),
        cut in 1u64..39,
    ) {
        // At least spec.len()*limit >= 40 events run in total, and
        // cut < 40, so the snapshot always lands strictly mid-run (a
        // cap that outlives the run would advance the clock to the
        // `run_until_capped` bound instead of the last event).
        let limit = 20;

        let mut reference = build(seed, &spec, limit);
        reference.run_to_completion(u64::MAX);
        let want_logs = logs(&reference, &spec);
        let want_final = reference.snapshot().expect("reference snapshot");

        let mut first = build(seed, &spec, limit);
        first.run_until_capped(SimTime::MAX, cut);
        let snap = first.snapshot().expect("mid-run snapshot");

        let mut resumed = build(seed, &spec, limit);
        resumed.restore(&snap).expect("restore");
        prop_assert_eq!(resumed.events_processed(), first.events_processed());
        resumed.run_to_completion(u64::MAX);

        prop_assert_eq!(logs(&resumed, &spec), want_logs,
            "per-node delivery logs must match the uninterrupted run");
        let got_final = resumed.snapshot().expect("resumed snapshot");
        prop_assert_eq!(got_final, want_final,
            "final engine state must be byte-identical");
    }
}

/// Pin the far-future coverage the property relies on: with multi-second
/// reschedules in play, a mid-run snapshot must actually carry events
/// beyond the wheel window (far slab + overflow heap occupants), and
/// restoring must land them at the right instants.
#[test]
fn snapshot_carries_far_slab_and_overflow_occupants() {
    let spec = [
        (false, 6_000u64),
        (true, 500_000_000),
        (false, 1_999_999_937),
    ];
    let limit = 12;
    let mut e = build(7, &spec, limit);
    e.run_until_capped(SimTime::MAX, 8);
    let snap = e.snapshot().expect("snapshot");
    let far = snap
        .events
        .iter()
        .filter(|ev| ev.time.0 > snap.now.0 + WHEEL_HORIZON_NS)
        .count();
    assert!(
        far >= 2,
        "snapshot must include far-future occupants (got {far} beyond the wheel window)"
    );

    let mut reference = build(7, &spec, limit);
    reference.run_to_completion(u64::MAX);

    let mut resumed = build(7, &spec, limit);
    resumed.restore(&snap).expect("restore");
    resumed.run_to_completion(u64::MAX);
    assert_eq!(logs(&resumed, &spec), logs(&reference, &spec));
    assert_eq!(resumed.now(), reference.now());
    assert_eq!(
        resumed.snapshot().unwrap(),
        reference.snapshot().unwrap(),
        "restored far-future events must replay byte-identically"
    );
}
