//! Property-based tests of the simulation kernel's invariants.

use phantom_sim::event::EventQueue;
use phantom_sim::fifo::{BoundedFifo, EnqueueResult};
use phantom_sim::rng::derive_seed;
use phantom_sim::stats::{Histogram, TimeSeries, TimeWeighted};
use phantom_sim::{Ctx, Engine, Node, NodeId, SimTime};
use proptest::prelude::*;

/// Minimal arena occupants for the id-stability property: three
/// distinct concrete types so adds interleave across three arenas.
struct TallyA {
    tag: u64,
    seen: u64,
}
struct TallyB {
    tag: u64,
    seen: u64,
}
struct TallyC {
    tag: u64,
    seen: u64,
}

macro_rules! tally_node {
    ($t:ty) => {
        impl Node<u64> for $t {
            fn on_event(&mut self, _ctx: &mut Ctx<'_, u64>, msg: u64) {
                self.seen += msg;
            }
        }
    };
}
tally_node!(TallyA);
tally_node!(TallyB);
tally_node!(TallyC);

proptest! {
    /// Events always pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), NodeId(0), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt);
                if ev.time == lt {
                    prop_assert!(ev.msg > li, "FIFO violated among equal timestamps");
                }
            }
            last = Some((ev.time, ev.msg));
        }
    }

    /// FIFO conservation: arrivals = departures + drops + still queued,
    /// and order is preserved.
    #[test]
    fn fifo_conservation(
        cap in 1usize..50,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut q = BoundedFifo::new(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for push in ops {
            if push {
                let r = q.push(next);
                if r == EnqueueResult::Accepted {
                    model.push_back(next);
                }
                next += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert!(q.len() <= cap);
        prop_assert_eq!(q.arrivals(), q.departures() + q.drops() + q.len() as u64);
    }

    /// The time-weighted mean always lies within [min, max] of the
    /// values the signal took (including the initial 0).
    #[test]
    fn time_weighted_mean_bounded(
        vals in proptest::collection::vec(0.0f64..1000.0, 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        for &v in &vals {
            t += 1_000_000; // 1 ms steps
            tw.set(SimTime(t), v);
        }
        let end = SimTime(t + 1_000_000);
        let mean = tw.mean_until(end);
        let lo = vals.iter().copied().fold(0.0, f64::min);
        let hi = vals.iter().copied().fold(0.0, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} not in [{lo}, {hi}]");
    }

    /// Histogram quantiles are monotone in q and bounded by the max.
    #[test]
    fn histogram_quantiles_monotone(
        vals in proptest::collection::vec(0.0f64..100.0, 1..200),
    ) {
        let mut h = Histogram::new(1.0, 64);
        for &v in &vals {
            h.record(v);
        }
        let qs = [0.1, 0.5, 0.9, 0.99, 1.0];
        let mut last = 0.0;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last - 1e-12, "quantiles must be monotone");
            last = v;
        }
        prop_assert!(h.quantile(1.0) <= h.max() + 1.0);
    }

    /// Derived seeds never collide for distinct stream indices under the
    /// same master (within a practical range).
    #[test]
    fn derived_seeds_distinct(master in any::<u64>(), a in 0u64..4096, b in 0u64..4096) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(master, a), derive_seed(master, b));
    }

    /// Arena-backed node ids stay stable under churn: interleaved
    /// registration across multiple concrete types grows each typed
    /// arena independently (reallocating its Vec underneath), yet the
    /// `id → node` mapping never moves — messages scheduled against an
    /// id *before* later growth land on the same node *after* it.
    #[test]
    fn arena_ids_stable_under_interleaved_growth(
        kinds in proptest::collection::vec(0u8..3, 1..150),
    ) {
        let mut e = Engine::<u64>::new(7);
        let mut expect: Vec<(u8, u64)> = Vec::new();
        for (i, &k) in kinds.iter().enumerate() {
            let tag = i as u64;
            let id = match k {
                0 => e.add_node(TallyA { tag, seen: 0 }),
                1 => e.add_node(TallyB { tag, seen: 0 }),
                _ => e.add_node(TallyC { tag, seen: 0 }),
            };
            // Ids are dense in registration order, independent of type.
            prop_assert_eq!(id, NodeId(i));
            expect.push((k, tag));
            // Scheduled now, delivered only after every later add: the
            // id must survive all intervening arena reallocations.
            e.schedule(SimTime(i as u64 + 1), id, tag + 1);
        }
        e.run_until(SimTime(kinds.len() as u64 + 1));
        for (i, &(k, tag)) in expect.iter().enumerate() {
            let id = NodeId(i);
            let (got_tag, seen) = match k {
                0 => { let n = e.node::<TallyA>(id); (n.tag, n.seen) }
                1 => { let n = e.node::<TallyB>(id); (n.tag, n.seen) }
                _ => { let n = e.node::<TallyC>(id); (n.tag, n.seen) }
            };
            prop_assert_eq!(got_tag, tag, "id {} resolved to a different node", i);
            prop_assert_eq!(seen, tag + 1, "message to id {} was misdelivered", i);
        }
        let stats = e.arena_stats();
        prop_assert!(stats.len() <= 3);
        prop_assert_eq!(stats.iter().map(|s| s.nodes).sum::<usize>(), kinds.len());
        prop_assert_eq!(e.node_count(), kinds.len());
    }

    /// Sample-and-hold lookup returns exactly the last sample at or
    /// before the query time.
    #[test]
    fn time_series_value_at_consistent(
        pts in proptest::collection::vec(0u64..10_000, 1..100),
    ) {
        let mut times = pts.clone();
        times.sort_unstable();
        let mut ts = TimeSeries::new();
        for (i, &t) in times.iter().enumerate() {
            ts.push(SimTime(t * 1000), i as f64);
        }
        // query at each sample time must return that sample's value (the
        // last one pushed at that timestamp)
        for (i, &t) in times.iter().enumerate() {
            let got = ts.value_at(t as f64 * 1000.0 / 1e9).unwrap();
            // duplicates: value_at returns the last of the equal group
            let expect = times.iter().rposition(|&x| x == t).unwrap() as f64;
            prop_assert!(got == expect || got >= i as f64);
        }
        prop_assert!(ts.value_at(-1.0).is_none());
    }
}
