//! Property test for the intra-run sharding contract: on random
//! topologies with random (lookahead-respecting) link delays and random
//! partition-affinity hints, a run at `--shards 1` and a run at
//! `--shards 2` must produce the identical probe event sequence — same
//! events, same order, same RNG draws — because the merged event order
//! is a pure function of `(topology, seed)`, independent of where the
//! cut falls.

use phantom_sim::probe::{install_thread_probe, take_thread_probe, Probe, ProbeEvent};
use phantom_sim::{Ctx, Engine, Node, NodeId, ShardGuard, ShardHints, SimDuration, SimTime};
use proptest::prelude::*;
use rand::RngCore;
use std::cell::RefCell;
use std::rc::Rc;

/// A node that mixes every received message into its state with its own
/// RNG stream, reports the state through the probe tap, and relays the
/// message (TTL-decremented) across one or two of its outgoing links.
struct Relay {
    links: Vec<(NodeId, SimDuration)>,
    state: u64,
}

impl Node<u32> for Relay {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, ttl: u32) {
        let draw = ctx.rng().next_u64();
        self.state = self
            .state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(draw ^ u64::from(ttl));
        let node = ctx.self_id();
        phantom_sim::probe::emit(ctx.now(), node, || ProbeEvent::Enqueue {
            port: (self.state >> 32) as u32,
            qlen: self.state as u32,
        });
        if ttl == 0 || self.links.is_empty() {
            return;
        }
        let fanout = 1 + (draw as usize % 2).min(self.links.len() - 1);
        for i in 0..fanout {
            let pick = (draw.rotate_right(13 * i as u32) as usize) % self.links.len();
            let (dst, prop) = self.links[pick];
            ctx.send(dst, prop, ttl - 1);
        }
    }
}

/// Records the full probe stream as rendered lines, on the run's
/// driving thread (shard workers buffer internally and the coordinator
/// replays into this probe in merged order).
struct CollectProbe {
    out: Rc<RefCell<Vec<String>>>,
}

impl Probe for CollectProbe {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        self.out
            .borrow_mut()
            .push(format!("{} {} {ev:?}", t.0, node.0));
    }
}

/// A random topology: node count, directed links as (from, to, extra
/// delay beyond the lookahead), affinity edges, and per-node kick TTLs.
#[derive(Debug, Clone)]
struct Topo {
    n: usize,
    lookahead_ns: u64,
    links: Vec<(usize, usize, u64)>,
    affinity: Vec<(usize, usize)>,
    ttls: Vec<u32>,
}

fn topo_strategy() -> impl Strategy<Value = Topo> {
    (2usize..12, 1u64..5_000).prop_flat_map(|(n, lookahead_ns)| {
        let links = proptest::collection::vec(
            (0..n, 0..n, 0u64..10_000).prop_filter("no self links", |(a, b, _)| a != b),
            1..24,
        );
        let affinity = proptest::collection::vec((0..n, 0..n), 0..6);
        let ttls = proptest::collection::vec(0u32..6, n..=n);
        (Just(n), Just(lookahead_ns), links, affinity, ttls).prop_map(
            |(n, lookahead_ns, links, affinity, ttls)| Topo {
                n,
                lookahead_ns,
                links,
                affinity,
                ttls,
            },
        )
    })
}

/// Build the engine for `topo` and run it to `until` at the given shard
/// count, returning the collected probe stream.
fn run_topo(topo: &Topo, seed: u64, shards: usize) -> Vec<String> {
    let _guard = ShardGuard::new(shards);
    let mut engine = Engine::<u32>::new(seed);
    let ids: Vec<NodeId> = (0..topo.n)
        .map(|_| {
            engine.add_node(Relay {
                links: Vec::new(),
                state: 0,
            })
        })
        .collect();
    for &(a, b, extra) in &topo.links {
        let prop = SimDuration(topo.lookahead_ns + extra);
        engine.node_mut::<Relay>(ids[a]).links.push((ids[b], prop));
    }
    engine.set_shard_hints(ShardHints {
        lookahead: SimDuration(topo.lookahead_ns),
        affinity: topo
            .affinity
            .iter()
            .map(|&(a, b)| (ids[a], ids[b]))
            .collect(),
    });
    for (i, &ttl) in topo.ttls.iter().enumerate() {
        engine.schedule(SimTime(i as u64), ids[i], ttl);
    }
    let out = Rc::new(RefCell::new(Vec::new()));
    let prev = install_thread_probe(Box::new(CollectProbe {
        out: Rc::clone(&out),
    }));
    debug_assert!(prev.is_none());
    // Two slices, to cover epoch state carried across `run_until` calls.
    engine.run_until(SimTime(40_000));
    engine.run_until(SimTime(200_000));
    drop(take_thread_probe());
    assert!(
        !engine.step(),
        "all TTL-bounded traffic must finish within the horizon"
    );
    Rc::try_unwrap(out).expect("probe dropped").into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_topologies_identical_at_shards_1_vs_2(topo in topo_strategy(), seed in 0u64..1_000) {
        let one = run_topo(&topo, seed, 1);
        let two = run_topo(&topo, seed, 2);
        prop_assert_eq!(&one, &two, "shards 1 vs 2 diverged");
        // And an uneven cut: more shards than most of these topologies
        // have clusters, leaving some shards empty.
        let three = run_topo(&topo, seed, 3);
        prop_assert_eq!(&one, &three, "shards 1 vs 3 diverged");
        prop_assert!(!one.is_empty(), "runs must emit probe events");
    }
}
