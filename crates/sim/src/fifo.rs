//! A bounded FIFO queue with drop and throughput accounting.
//!
//! Every switch output port and every router in the reproduction queues
//! through a [`BoundedFifo`]. Besides the queue itself it tracks the
//! counters each experiment reports: arrivals, departures, drops, and the
//! high-water mark. Time-weighted occupancy is recorded by the owner via
//! [`crate::stats::TimeWeighted`], since only the owner knows the clock.

use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueResult {
    /// The item was accepted.
    Accepted,
    /// The queue was full; the item was dropped (tail drop).
    Dropped,
}

/// A bounded FIFO with accounting. `cap` is in items (cells or packets).
#[derive(Clone, Debug)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    cap: usize,
    arrivals: u64,
    departures: u64,
    drops: u64,
    high_water: usize,
}

impl<T> BoundedFifo<T> {
    /// A queue holding at most `cap` items.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        BoundedFifo {
            items: VecDeque::new(),
            cap,
            arrivals: 0,
            departures: 0,
            drops: 0,
            high_water: 0,
        }
    }

    /// Attempt to enqueue; tail-drops when full.
    pub fn push(&mut self, item: T) -> EnqueueResult {
        self.arrivals += 1;
        if self.items.len() >= self.cap {
            self.drops += 1;
            crate::telemetry::note_drop();
            return EnqueueResult::Dropped;
        }
        self.items.push_back(item);
        if self.items.len() > self.high_water {
            self.high_water = self.items.len();
            // Only on a new high-water mark, so the common enqueue pays
            // nothing for run-wide peak tracking.
            crate::telemetry::note_queue_depth(self.high_water);
        }
        EnqueueResult::Accepted
    }

    /// Record an arrival that the owner decided to drop *before* queueing
    /// (e.g. Selective Discard). Keeps arrival/drop accounting consistent.
    pub fn note_policy_drop(&mut self) {
        self.arrivals += 1;
        self.drops += 1;
        crate::telemetry::note_drop();
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.departures += 1;
        }
        item
    }

    /// Current queue length in items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total arrivals (including dropped ones).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total items dequeued.
    pub fn departures(&self) -> u64 {
        self.departures
    }

    /// Total drops (tail drops plus policy drops).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Largest queue length observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterate over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Serialize the queue contents and counters for a checkpoint.
    /// `enc` renders one item as a single-line string (typically a
    /// [`crate::snapshot::SnapshotMessage`] encoding). Capacity is
    /// static configuration and not written.
    pub fn save(&self, w: &mut crate::snapshot::KvWriter, mut enc: impl FnMut(&T) -> String) {
        w.u64("arrivals", self.arrivals);
        w.u64("departures", self.departures);
        w.u64("drops", self.drops);
        w.u64("high_water", self.high_water as u64);
        w.u64("len", self.items.len() as u64);
        for (i, item) in self.items.iter().enumerate() {
            w.str(&format!("q{i}"), &enc(item));
        }
    }

    /// Overwrite this queue from a [`BoundedFifo::save`] record. Items
    /// re-enter directly — the restore path deliberately bypasses
    /// [`BoundedFifo::push`] so no drop/telemetry accounting fires.
    pub fn restore(
        &mut self,
        r: &mut crate::snapshot::KvReader,
        mut dec: impl FnMut(&str) -> Result<T, String>,
    ) -> Result<(), String> {
        self.arrivals = r.u64("arrivals")?;
        self.departures = r.u64("departures")?;
        self.drops = r.u64("drops")?;
        self.high_water = r.u64("high_water")? as usize;
        let len = r.u64("len")? as usize;
        if len > self.cap {
            return Err(format!("{len} queued items exceed capacity {}", self.cap));
        }
        self.items.clear();
        for i in 0..len {
            self.items.push_back(dec(&r.str(&format!("q{i}"))?)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(10);
        for i in 0..5 {
            assert_eq!(q.push(i), EnqueueResult::Accepted);
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = BoundedFifo::new(2);
        assert_eq!(q.push('a'), EnqueueResult::Accepted);
        assert_eq!(q.push('b'), EnqueueResult::Accepted);
        assert_eq!(q.push('c'), EnqueueResult::Dropped);
        assert_eq!(q.len(), 2);
        assert_eq!(q.drops(), 1);
        assert_eq!(q.arrivals(), 3);
    }

    #[test]
    fn accounting_is_consistent() {
        let mut q = BoundedFifo::new(3);
        for i in 0..10 {
            q.push(i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.arrivals(), 10);
        assert_eq!(q.departures() + q.drops(), 10);
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn policy_drop_counts_as_arrival_and_drop() {
        let mut q: BoundedFifo<u8> = BoundedFifo::new(4);
        q.note_policy_drop();
        assert_eq!(q.arrivals(), 1);
        assert_eq!(q.drops(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _q: BoundedFifo<u8> = BoundedFifo::new(0);
    }
}
