//! Engine checkpointing: serializable snapshots of complete engine state.
//!
//! A [`crate::Engine`] run is a pure function of `(topology, seed)`, so a
//! mid-run snapshot that captures *all* dynamic state — every node's
//! fields, every per-node RNG stream, the clock, and the exact pending
//! contents of the timer wheel (including far-future slab and overflow
//! heap occupants, with their `(time, seq)` ordering) — is enough to
//! resume the run and reproduce the uninterrupted event sequence
//! byte-for-byte. That hard contract is what `phantom resume` and the
//! trace-divergence bisector are built on.
//!
//! This module owns the *format-free* layer: node state is written
//! through a [`KvWriter`] (flat `key=value` tokens, values
//! percent-escaped, numeric fields in exact round-trip encodings) and
//! read back through a [`KvReader`]; messages cross the boundary via
//! [`SnapshotMessage`]. Rendering a snapshot into the versioned
//! `phantom-checkpoint/1` artifact (manifest, provenance, JSONL) is the
//! CLI's job — the engine neither reads nor writes JSON.
//!
//! Restores are *rebuild-then-overwrite*: the caller reconstructs the
//! topology the same deterministic way the original run did (same node
//! registration order, same static configuration), then
//! [`crate::Engine::restore`] overwrites the dynamic state. Static
//! fields (routes, link delays, parameter blocks) are therefore never
//! serialized — only what time evolves.

use std::collections::HashMap;

/// Exact round-trip rendering of an `f64`. Rust's `Display` prints the
/// shortest decimal string that parses back to the identical bit
/// pattern (for finite values), so `parse_f64(&fmt_f64(v)) == v`
/// bit-for-bit; non-finite values render as `NaN`/`inf`/`-inf`, which
/// `f64::from_str` accepts.
pub fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Parse an [`fmt_f64`] rendering back.
pub fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("bad f64 {s:?}: {e}"))
}

/// Percent-escape a value so it survives the `key=value`-with-spaces
/// token format: `%`, space, `=` and ASCII control characters are
/// encoded as `%XX`. Everything else passes through.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'=' => out.push_str(&format!("%{b:02X}")),
            0x00..=0x1F | 0x7F => out.push_str(&format!("%{b:02X}")),
            _ => out.push(b as char),
        }
    }
    out
}

/// Invert [`escape`].
pub fn unescape(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hv = u8::from_str_radix(
                std::str::from_utf8(hex).map_err(|_| format!("bad escape in {s:?}"))?,
                16,
            )
            .map_err(|_| format!("bad escape in {s:?}"))?;
            out.push(hv);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape decodes to invalid UTF-8 in {s:?}"))
}

/// Writer for one node's dynamic state: an ordered sequence of
/// `key=value` tokens separated by single spaces. Keys are plain
/// identifiers (optionally dotted via [`KvWriter::scope`]); values are
/// percent-escaped. Numeric encodings are exact: integers in decimal,
/// floats via [`fmt_f64`].
#[derive(Default)]
pub struct KvWriter {
    out: String,
    prefix: String,
}

impl KvWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_key(&mut self, key: &str) {
        debug_assert!(
            !key.contains([' ', '=']),
            "kv keys must be plain identifiers: {key:?}"
        );
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        self.out.push_str(&self.prefix);
        self.out.push_str(key);
        self.out.push('=');
    }

    /// Write a string value (escaped).
    pub fn str(&mut self, key: &str, val: &str) {
        self.push_key(key);
        let escaped = escape(val);
        self.out.push_str(&escaped);
    }

    /// Write an unsigned integer.
    pub fn u64(&mut self, key: &str, val: u64) {
        self.push_key(key);
        self.out.push_str(&val.to_string());
    }

    /// Write a signed integer.
    pub fn i64(&mut self, key: &str, val: i64) {
        self.push_key(key);
        self.out.push_str(&val.to_string());
    }

    /// Write a float with exact round-trip.
    pub fn f64(&mut self, key: &str, val: f64) {
        self.push_key(key);
        self.out.push_str(&fmt_f64(val));
    }

    /// Write a bool as `0`/`1`.
    pub fn bool(&mut self, key: &str, val: bool) {
        self.u64(key, u64::from(val));
    }

    /// Write a list of floats, comma-joined, each exact round-trip.
    pub fn f64_list(&mut self, key: &str, vals: &[f64]) {
        let joined = vals
            .iter()
            .map(|v| fmt_f64(*v))
            .collect::<Vec<_>>()
            .join(",");
        self.str(key, &joined);
    }

    /// Write a list of unsigned integers, comma-joined.
    pub fn u64_list(&mut self, key: &str, vals: &[u64]) {
        let joined = vals
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        self.str(key, &joined);
    }

    /// Write every key produced inside `f` under a `seg.` prefix —
    /// how composite nodes (a switch's ports, a port's allocator)
    /// namespace their sub-objects without colliding.
    pub fn scope(&mut self, seg: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.prefix.len();
        self.prefix.push_str(seg);
        self.prefix.push('.');
        f(self);
        self.prefix.truncate(saved);
    }

    /// Finish, yielding the token string.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Reader over a [`KvWriter`] token string. Typed getters fail loudly
/// (with the key name) on missing keys or malformed values — a
/// checkpoint that does not parse must never half-restore an engine.
pub struct KvReader {
    map: HashMap<String, String>,
    prefix: String,
}

impl KvReader {
    /// Parse a token string produced by [`KvWriter::finish`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut map = HashMap::new();
        for tok in text.split(' ').filter(|t| !t.is_empty()) {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed kv token {tok:?}"))?;
            if map.insert(k.to_string(), unescape(v)?).is_some() {
                return Err(format!("duplicate kv key {k:?}"));
            }
        }
        Ok(KvReader {
            map,
            prefix: String::new(),
        })
    }

    fn raw(&self, key: &str) -> Result<&str, String> {
        let full = format!("{}{key}", self.prefix);
        self.map
            .get(&full)
            .map(String::as_str)
            .ok_or_else(|| format!("missing kv key {full:?}"))
    }

    /// Read a string value.
    pub fn str(&self, key: &str) -> Result<String, String> {
        self.raw(key).map(str::to_string)
    }

    /// Read an unsigned integer.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        let raw = self.raw(key)?;
        raw.parse()
            .map_err(|e| format!("bad u64 {key}={raw:?}: {e}"))
    }

    /// Read a signed integer.
    pub fn i64(&self, key: &str) -> Result<i64, String> {
        let raw = self.raw(key)?;
        raw.parse()
            .map_err(|e| format!("bad i64 {key}={raw:?}: {e}"))
    }

    /// Read a float.
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        let raw = self.raw(key)?;
        parse_f64(raw).map_err(|e| format!("{key}: {e}"))
    }

    /// Read a bool written by [`KvWriter::bool`].
    pub fn bool(&self, key: &str) -> Result<bool, String> {
        match self.u64(key)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool {key}={other}")),
        }
    }

    /// Read a float list written by [`KvWriter::f64_list`].
    pub fn f64_list(&self, key: &str) -> Result<Vec<f64>, String> {
        let raw = self.str(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|t| parse_f64(t).map_err(|e| format!("{key}: {e}")))
            .collect()
    }

    /// Read an integer list written by [`KvWriter::u64_list`].
    pub fn u64_list(&self, key: &str) -> Result<Vec<u64>, String> {
        let raw = self.str(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|t| {
                t.parse()
                    .map_err(|e| format!("bad u64 list item {key}={t:?}: {e}"))
            })
            .collect()
    }

    /// Read keys inside `f` under a `seg.` prefix, mirroring
    /// [`KvWriter::scope`].
    pub fn scope<T>(
        &mut self,
        seg: &str,
        f: impl FnOnce(&mut Self) -> Result<T, String>,
    ) -> Result<T, String> {
        let saved = self.prefix.len();
        self.prefix.push_str(seg);
        self.prefix.push('.');
        let out = f(self);
        self.prefix.truncate(saved);
        out
    }
}

/// A message type that can cross a checkpoint: encoded to a single-line
/// string and decoded back to an identical value. Implemented by each
/// simulation domain's message enum (`AtmMsg`, `TcpMsg`), which is what
/// lets the engine serialize the timer wheel's pending events.
pub trait SnapshotMessage: Sized {
    /// Render this message as a single-line string (no `\n`).
    fn encode(&self) -> String;
    /// Parse an [`SnapshotMessage::encode`] rendering back.
    fn decode(s: &str) -> Result<Self, String>;
}

impl SnapshotMessage for u32 {
    fn encode(&self) -> String {
        self.to_string()
    }
    fn decode(s: &str) -> Result<Self, String> {
        s.parse().map_err(|e| format!("bad u32 message {s:?}: {e}"))
    }
}

/// One node's serialized dynamic state within an [`EngineSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSnapshot {
    /// Dense engine node id.
    pub id: usize,
    /// `std::any::type_name` of the concrete node type — a restore into
    /// a rebuilt engine cross-checks this against the rebuilt arena.
    pub type_name: String,
    /// Raw xoshiro256++ state of the node's RNG stream.
    pub rng: [u64; 4],
    /// The node's dynamic fields, as a [`KvWriter`] token string.
    pub state: String,
}

/// One pending calendar event within an [`EngineSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct EventSnapshot {
    /// Delivery time.
    pub time: crate::time::SimTime,
    /// Insertion sequence number — the FIFO tie-break among equal
    /// times. Preserved exactly so the restored calendar delivers the
    /// identical `(time, seq)` order.
    pub seq: u64,
    /// Destination node id.
    pub dst: usize,
    /// The payload, via [`SnapshotMessage::encode`].
    pub msg: String,
}

/// Complete dynamic state of an engine at one instant: clock, dispatch
/// count, calendar sequence counter, every node (state + RNG), and
/// every pending event in `(time, seq)` order.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Simulation clock at snapshot time.
    pub now: crate::time::SimTime,
    /// [`crate::Engine::events_processed`] at snapshot time.
    pub events_processed: u64,
    /// The calendar's next insertion sequence number.
    pub next_seq: u64,
    /// Per-node dynamic state, dense id order.
    pub nodes: Vec<NodeSnapshot>,
    /// Pending events, ascending `(time, seq)`.
    pub events: Vec<EventSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1.234_567_890_123_456_7e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = parse_f64(&fmt_f64(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} must round-trip");
        }
        assert!(parse_f64(&fmt_f64(f64::NAN)).unwrap().is_nan());
        assert!(parse_f64("nope").is_err());
    }

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in ["", "plain", "a b=c%d", "tab\there", "new\nline", "100%=x y"] {
            let esc = escape(s);
            assert!(!esc.contains(' ') && !esc.contains('=') && !esc.contains('\n'));
            assert_eq!(unescape(&esc).unwrap(), s);
        }
        assert!(unescape("%").is_err(), "truncated escape");
        assert!(unescape("%zz").is_err(), "non-hex escape");
    }

    #[test]
    fn kv_round_trips_typed_values_and_scopes() {
        let mut w = KvWriter::new();
        w.u64("count", 42);
        w.i64("delta", -7);
        w.f64("rate", 1.0 / 3.0);
        w.bool("busy", true);
        w.str("name", "a b=c");
        w.f64_list("xs", &[1.5, -2.25, 0.1]);
        w.u64_list("ys", &[3, 1, 4]);
        w.f64_list("empty", &[]);
        w.scope("port0", |w| {
            w.u64("depth", 9);
            w.scope("alloc", |w| w.f64("macr", 123.456));
        });
        let text = w.finish();
        assert!(!text.contains('\n'));

        let mut r = KvReader::parse(&text).unwrap();
        assert_eq!(r.u64("count").unwrap(), 42);
        assert_eq!(r.i64("delta").unwrap(), -7);
        assert_eq!(r.f64("rate").unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert!(r.bool("busy").unwrap());
        assert_eq!(r.str("name").unwrap(), "a b=c");
        assert_eq!(r.f64_list("xs").unwrap(), vec![1.5, -2.25, 0.1]);
        assert_eq!(r.u64_list("ys").unwrap(), vec![3, 1, 4]);
        assert!(r.f64_list("empty").unwrap().is_empty());
        r.scope("port0", |r| {
            assert_eq!(r.u64("depth").unwrap(), 9);
            r.scope("alloc", |r| {
                assert_eq!(r.f64("macr").unwrap(), 123.456);
                Ok(())
            })
        })
        .unwrap();
        assert!(r.u64("missing").is_err());
    }

    #[test]
    fn kv_reader_rejects_malformed_input() {
        assert!(KvReader::parse("noequals").is_err());
        assert!(KvReader::parse("a=1 a=2").is_err(), "duplicate key");
        let r = KvReader::parse("n=notanumber").unwrap();
        assert!(r.u64("n").is_err());
        assert!(r.bool("n").is_err());
    }
}
