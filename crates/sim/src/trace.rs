//! CSV export of recorded series.
//!
//! Experiments write their traces in "long" format — `series,t,value` — so
//! that any plotting tool can facet by series name without column
//! alignment. Files land wherever the caller points them (the `repro`
//! binary uses `target/experiments/`).

use crate::stats::TimeSeries;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Quote a CSV field per RFC 4180 when it contains a comma, quote, CR or
/// newline; otherwise return it untouched. Keeps long-format files safe
/// against series names like `queue, cells`.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write `series` as long-format CSV (`series,t,value`) to `path`,
/// creating parent directories as needed. Series names are CSV-escaped
/// (see [`csv_escape`]) so a comma or newline in a name cannot corrupt
/// the file.
pub fn write_long_csv(path: &Path, series: &[(&str, &TimeSeries)]) -> io::Result<()> {
    write_long_csv_with_manifest(path, series, None)
}

/// [`write_long_csv`], optionally prefixed with a `# manifest: {json}`
/// comment line carrying the run's provenance (scenario, seed, config
/// hash, git rev). Plotting tools skip `#` lines; humans and the CI
/// schema check read them.
pub fn write_long_csv_with_manifest(
    path: &Path,
    series: &[(&str, &TimeSeries)],
    manifest_json: Option<&str>,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    if let Some(m) = manifest_json {
        writeln!(w, "# manifest: {m}")?;
    }
    writeln!(w, "series,t,value")?;
    for (name, ts) in series {
        let name = csv_escape(name);
        for (t, v) in ts.iter() {
            writeln!(w, "{name},{t},{v}")?;
        }
    }
    w.flush()
}

/// Render a series as fixed-step downsampled rows for terminal output:
/// `(t, value)` pairs at roughly `steps` evenly spaced times, using
/// sample-and-hold interpolation. Useful to "print" a paper figure.
pub fn downsample(ts: &TimeSeries, steps: usize) -> Vec<(f64, f64)> {
    if ts.is_empty() || steps == 0 {
        return Vec::new();
    }
    let t0 = ts.times()[0];
    let t1 = *ts.times().last().unwrap();
    if steps == 1 || t1 <= t0 {
        return vec![(t1, ts.last().unwrap())];
    }
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        let t = t0 + (t1 - t0) * i as f64 / (steps - 1) as f64;
        if let Some(v) = ts.value_at(t) {
            out.push((t, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn series(pts: &[(u64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(ms, v) in pts {
            ts.push(SimTime::from_millis(ms), v);
        }
        ts
    }

    #[test]
    fn long_csv_round_trip() {
        let dir = std::env::temp_dir().join("phantom_sim_trace_test");
        let path = dir.join("out.csv");
        let ts = series(&[(1, 1.0), (2, 2.0)]);
        write_long_csv(&path, &[("macr", &ts)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines[0], "series,t,value");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("macr,0.001,1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn long_csv_escapes_hostile_series_names() {
        let dir = std::env::temp_dir().join("phantom_sim_trace_escape_test");
        let path = dir.join("out.csv");
        let ts = series(&[(1, 1.0)]);
        write_long_csv(&path, &[("queue, \"cells\"\nx", &ts)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        // The hostile name is quoted; its embedded newline stays inside
        // the quotes, so the record count is preserved for CSV parsers
        // while naive line counting sees the quoted break.
        assert!(lines[1].starts_with("\"queue, \"\"cells\"\""));
        assert_eq!(body.matches(",0.001,1").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_escape_passes_clean_names_through() {
        assert_eq!(csv_escape("macr"), "macr");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"x"), "\"q\"\"x\"");
    }

    #[test]
    fn long_csv_manifest_comment_first() {
        let dir = std::env::temp_dir().join("phantom_sim_trace_manifest_test");
        let path = dir.join("out.csv");
        let ts = series(&[(1, 1.0)]);
        write_long_csv_with_manifest(&path, &[("macr", &ts)], Some("{\"seed\":1}")).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines[0], "# manifest: {\"seed\":1}");
        assert_eq!(lines[1], "series,t,value");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn downsample_endpoints_and_hold() {
        let ts = series(&[(0, 1.0), (100, 2.0)]);
        let pts = downsample(&ts, 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].1, 1.0);
        assert_eq!(pts[4].1, 2.0);
        // points strictly before the second sample hold the first value
        assert_eq!(pts[1].1, 1.0);
    }

    #[test]
    fn downsample_degenerate_cases() {
        assert!(downsample(&TimeSeries::new(), 10).is_empty());
        let ts = series(&[(5, 3.0)]);
        let pts = downsample(&ts, 10);
        assert_eq!(pts, vec![(0.005, 3.0)]);
    }
}
