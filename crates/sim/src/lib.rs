//! # phantom-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate that replaces BONeS, the commercial
//! block-oriented network simulator the Phantom paper used for all of its
//! experiments. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulation time, so
//!   event ordering is exact and runs are bit-reproducible.
//! * [`Engine`] — a single-threaded event loop dispatching typed messages to
//!   [`Node`]s through a hierarchical timer-wheel calendar ([`event`],
//!   tagged [`CALENDAR`]) with exact FIFO tie-breaking at equal times.
//! * [`rng`] — seed-derived per-stream random number generators so that
//!   adding a node never perturbs the random sequence of another.
//! * [`stats`] — time series, time-weighted averages, counters and
//!   histograms used by every experiment to record queue lengths, MACR
//!   traces and session rates.
//! * [`fifo`] — a bounded FIFO queue with drop and occupancy accounting,
//!   the building block of every switch output port and router.
//! * [`trace`] — CSV export of recorded series for offline plotting.
//! * [`probe`] — typed semantic events (enqueue/drop/MACR update/…) with
//!   pluggable sinks (JSONL, ring buffer), zero-cost when no probe is
//!   installed.
//! * [`telemetry`] — thread-local run-wide counters (drops, retransmits,
//!   queue peak) harvested per run by harnesses.
//! * [`profile`] — in-run engine profiler attributing wall time per node
//!   type, event kind and calendar phase; always compiled, off by
//!   default, one branch per run call when disabled.
//! * [`flight`] — panic flight recorder: a ring of the last semantic
//!   events plus an engine snapshot, dumped as post-mortem JSONL from a
//!   chained panic hook.
//! * [`snapshot`] — engine checkpointing: complete dynamic-state
//!   snapshots (node fields, RNG streams, timer-wheel contents) that
//!   restore into a rebuilt engine and resume byte-identically.
//! * [`shard`] — conservative intra-run parallelism: the topology is
//!   partitioned into shards that advance in lookahead-bounded epochs on
//!   their own threads, with deterministic cross-shard merge — byte-
//!   identical output at any shard count.
//!
//! The kernel is deliberately synchronous by default: a flow-control
//! simulation is CPU-bound and must be deterministic, so an async runtime
//! would add overhead and nondeterminism without benefit. The opt-in
//! sharded path keeps that bargain by trading asynchrony for conservative
//! time barriers.
//!
//! ## Example
//!
//! ```
//! use phantom_sim::{Engine, Node, Ctx, SimTime, SimDuration};
//!
//! struct Ping { peer: phantom_sim::NodeId, count: u32 }
//!
//! impl Node<u32> for Ping {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
//!         self.count += 1;
//!         if msg < 10 {
//!             ctx.send(self.peer, SimDuration::from_micros(5), msg + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::<u32>::new(42);
//! let a = engine.add_node(Ping { peer: phantom_sim::NodeId(1), count: 0 });
//! let b = engine.add_node(Ping { peer: a, count: 0 });
//! engine.schedule(SimTime::ZERO, a, 0);
//! engine.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(engine.now(), SimTime::from_secs_f64(1.0));
//! ```

// `deny`, not `forbid`: the sharded run path ([`shard`]) holds nodes in
// `UnsafeCell` arenas so disjoint shard workers can dispatch through a
// shared reference. Every use is a scoped `#[allow(unsafe_code)]` with a
// SAFETY argument; everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod engine;
pub mod event;
pub mod fifo;
pub mod flight;
pub mod probe;
pub mod profile;
pub mod rng;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use cancel::{CancelGuard, CancelToken};
pub use engine::{thread_events_dispatched, ArenaStats, Ctx, Engine, Node, NodeId, TraceHook};
pub use event::CALENDAR;
pub use fifo::BoundedFifo;
pub use flight::{FlightGuard, FlightProbe};
pub use probe::{
    install_thread_probe, take_thread_probe, DropReason, JsonlProbe, KindSet, Probe, ProbeEvent,
    ProbeGuard, ProbeKind, RingProbe,
};
pub use profile::{CalendarStats, ProfileEntry, ProfileMarker, ProfileReport};
pub use rng::SeedStream;
pub use shard::{set_shards, shards, ShardGuard, ShardHints};
pub use snapshot::{
    EngineSnapshot, EventSnapshot, KvReader, KvWriter, NodeSnapshot, SnapshotMessage,
};
pub use stats::{Counter, Histogram, TimeSeries, TimeWeighted};
pub use time::{SimDuration, SimTime};
