//! Panic flight recorder: an actionable tail instead of a bare backtrace.
//!
//! When a run panics 50 million events deep, a backtrace says *where*
//! the engine died but not *what the simulation was doing*. Armed with
//! [`arm`], this module keeps a fixed-size ring of the most recent
//! semantic events (the [`crate::probe::RingProbe`] sink, fed by a
//! [`FlightProbe`] teed into the thread's probe chain) plus a rolling
//! engine-state snapshot (current sim-time, dispatch count, pending
//! calendar events, arena stats), and dumps everything to a post-mortem
//! JSONL file from a chained panic hook.
//!
//! The hook runs *before* unwinding — and before the process dies under
//! the release profile's `panic = "abort"` — on the panicking thread
//! itself, so the thread-local state it reads is exactly the crashed
//! run's. Runs that finish normally write nothing: dropping the
//! [`FlightGuard`] disarms the recorder.
//!
//! ## Dump format (`phantom-postmortem/1`)
//!
//! One JSON object per line, every line flat (parseable by the same
//! line-oriented parser as every other phantom artifact):
//!
//! 1. the provenance manifest (or a bare `{"schema": ...}` header),
//! 2. a `{"record":"snapshot", ...}` line with the panic message and
//!    engine state,
//! 3. one `{"record":"arena", ...}` line per typed arena,
//! 4. the retained ring tail, oldest first, as `{"record":"event", ...}`
//!    lines in `phantom-trace/1` field layout.
//!
//! Like the profiler, the recorder is always compiled and off by
//! default: disarmed, engines pay one thread-local check per run call;
//! armed, the engine takes the instrumented loop and updates the
//! snapshot cursors once per dispatch.

use crate::engine::{ArenaStats, NodeId};
use crate::probe::{event_to_json, Probe, ProbeEvent, RingProbe};
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::fs;
use std::panic;
use std::path::{Path, PathBuf};
use std::sync::Once;

/// Default capacity of the retained event ring.
pub const DEFAULT_RING_CAP: usize = 256;

struct FlightState {
    path: PathBuf,
    manifest: Option<String>,
    ring: RingProbe,
    /// Configured ring depth, recorded in the dump's snapshot line so a
    /// post-mortem says how much tail it *could* have retained.
    ring_cap: usize,
    sim_time: SimTime,
    dispatches: u64,
    pending_events: usize,
    arenas: Vec<(&'static str, usize, usize)>,
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static FLIGHT: RefCell<Option<FlightState>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

/// True when a flight recorder is armed on this thread. The engine
/// checks this once per run call, not per event.
#[inline]
pub fn armed() -> bool {
    ARMED.with(|f| f.get())
}

/// Arm the flight recorder: on panic, a post-mortem dump is written to
/// `path` (atomically: temp file + rename). `manifest_json` becomes the
/// dump's first line; `ring_cap` bounds the retained event tail. The
/// recorder disarms when the returned guard drops.
///
/// The panic hook is installed process-wide on first arm and chains to
/// the previous hook, so backtraces still print.
pub fn arm(path: &Path, manifest_json: Option<&str>, ring_cap: usize) -> FlightGuard {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            dump_on_panic(info);
            prev(info);
        }));
    });
    FLIGHT.with(|f| {
        *f.borrow_mut() = Some(FlightState {
            path: path.to_path_buf(),
            manifest: manifest_json.map(str::to_string),
            ring: RingProbe::new(ring_cap),
            ring_cap,
            sim_time: SimTime::ZERO,
            dispatches: 0,
            pending_events: 0,
            arenas: Vec::new(),
        });
    });
    ARMED.with(|f| f.set(true));
    FlightGuard
}

/// Disarms the thread's flight recorder when dropped (without writing
/// anything — a completed run needs no post-mortem).
pub struct FlightGuard;

impl Drop for FlightGuard {
    fn drop(&mut self) {
        ARMED.with(|f| f.set(false));
        FLIGHT.with(|f| f.borrow_mut().take());
    }
}

/// A probe sink feeding the recorder's ring; tee it into the thread's
/// probe chain so the dump carries the last semantic events.
pub struct FlightProbe;

impl Probe for FlightProbe {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        FLIGHT.with(|f| {
            if let Some(st) = f.borrow_mut().as_mut() {
                st.ring.on_event(t, node, ev);
            }
        });
    }
}

/// Record the arena layout at run start (called by the engine when it
/// enters an instrumented run with the recorder armed).
pub(crate) fn note_run_start(stats: &[ArenaStats]) {
    FLIGHT.with(|f| {
        if let Some(st) = f.borrow_mut().as_mut() {
            st.arenas = stats
                .iter()
                .map(|a| (a.type_name, a.nodes, a.bytes))
                .collect();
        }
    });
}

/// Update the rolling engine snapshot after one dispatch.
#[inline]
pub(crate) fn note_dispatch(now: SimTime, dispatches: u64, pending: usize) {
    FLIGHT.with(|f| {
        if let Some(st) = f.borrow_mut().as_mut() {
            st.sim_time = now;
            st.dispatches = dispatches;
            st.pending_events = pending;
        }
    });
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_dump(st: &FlightState, panic_msg: &str) -> String {
    let mut out = String::new();
    match &st.manifest {
        Some(m) => out.push_str(m),
        None => out.push_str("{\"schema\":\"phantom-postmortem/1\"}"),
    }
    out.push('\n');
    out.push_str(&format!(
        "{{\"record\":\"snapshot\",\"panic\":\"{}\",\"sim_secs\":{},\"dispatches\":{},\"pending_events\":{},\"ring_seen\":{},\"ring_len\":{},\"ring_cap\":{}}}\n",
        json_escape(panic_msg),
        st.sim_time.as_secs_f64(),
        st.dispatches,
        st.pending_events,
        st.ring.seen(),
        st.ring.events().count(),
        st.ring_cap,
    ));
    for &(name, nodes, bytes) in &st.arenas {
        out.push_str(&format!(
            "{{\"record\":\"arena\",\"type\":\"{}\",\"nodes\":{nodes},\"bytes\":{bytes}}}\n",
            json_escape(name)
        ));
    }
    for (t, node, ev) in st.ring.events() {
        let line = event_to_json(*t, *node, ev);
        // Tag the trace-format line as an event record.
        out.push_str("{\"record\":\"event\",");
        out.push_str(line.strip_prefix('{').unwrap_or(&line));
        out.push('\n');
    }
    out
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn dump_on_panic(info: &panic::PanicHookInfo<'_>) {
    if !armed() {
        return;
    }
    let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    let msg = match info.location() {
        Some(loc) => format!("{msg} (at {}:{})", loc.file(), loc.line()),
        None => msg,
    };
    // try_borrow: if the panic fired while the recorder itself held the
    // state (e.g. inside FlightProbe), skip the dump rather than abort
    // with a nested panic.
    let _ = FLIGHT.try_with(|f| {
        if let Ok(guard) = f.try_borrow() {
            if let Some(st) = guard.as_ref() {
                let dump = render_dump(st, &msg);
                match write_atomic(&st.path, &dump) {
                    Ok(()) => eprintln!(
                        "flight recorder: post-mortem written to {}",
                        st.path.display()
                    ),
                    Err(e) => eprintln!(
                        "flight recorder: failed to write {}: {e}",
                        st.path.display()
                    ),
                }
            }
        }
    });
}

/// Render the current recorder state as a dump without panicking —
/// exercised by tests and usable for "dump on demand" diagnostics.
/// Returns `None` when the recorder is not armed.
pub fn dump_now(reason: &str) -> Option<String> {
    FLIGHT.with(|f| f.borrow().as_ref().map(|st| render_dump(st, reason)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::DropReason;

    #[test]
    fn disarmed_thread_reports_unarmed() {
        assert!(!armed());
        assert!(dump_now("x").is_none());
    }

    #[test]
    fn guard_arms_and_disarms() {
        let dir = std::env::temp_dir().join("phantom-flight-test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("pm.jsonl");
        {
            let _g = arm(&path, Some("{\"schema\":\"phantom-postmortem/1\"}"), 4);
            assert!(armed());
            note_dispatch(SimTime::from_millis(5), 42, 7);
            FlightProbe.on_event(
                SimTime::from_millis(4),
                NodeId(3),
                &ProbeEvent::Drop {
                    port: 1,
                    qlen: 9,
                    reason: DropReason::Overflow,
                },
            );
            let dump = dump_now("test reason").expect("armed recorder dumps");
            let lines: Vec<&str> = dump.lines().collect();
            assert!(lines[0].contains("phantom-postmortem/1"));
            assert!(lines[1].contains("\"record\":\"snapshot\""));
            assert!(lines[1].contains("\"panic\":\"test reason\""));
            assert!(lines[1].contains("\"dispatches\":42"));
            assert!(lines[1].contains("\"pending_events\":7"));
            assert!(lines[2].contains("\"record\":\"event\""));
            assert!(lines[2].contains("\"kind\":\"drop\""));
        }
        assert!(!armed());
    }

    #[test]
    fn ring_is_bounded() {
        let path = std::env::temp_dir().join("phantom-flight-ring.jsonl");
        let _g = arm(&path, None, 2);
        for i in 0..5 {
            FlightProbe.on_event(
                SimTime::from_millis(i),
                NodeId(0),
                &ProbeEvent::SessionStart { session: i as u32 },
            );
        }
        let dump = dump_now("r").unwrap();
        let events: Vec<&str> = dump
            .lines()
            .filter(|l| l.contains("\"record\":\"event\""))
            .collect();
        assert_eq!(events.len(), 2, "ring keeps only the most recent");
        assert!(events[1].contains("\"session\":4"));
        assert!(dump.contains("\"ring_seen\":5"));
        assert!(dump.contains("\"ring_cap\":2"), "snapshot records depth");
    }

    #[test]
    fn escapes_panic_messages() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn panic_hook_writes_the_dump() {
        // Tests run with the unwind panic runtime, so the hook fires and
        // the thread survives via catch_unwind. Under the release
        // profile's panic=abort the same hook runs just before the
        // process dies.
        let dir = std::env::temp_dir().join(format!("phantom-flight-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("hook.pm.jsonl");
        let _ = fs::remove_file(&path);
        let path2 = path.clone();
        let result = std::panic::catch_unwind(move || {
            let _g = arm(&path2, None, 8);
            note_dispatch(SimTime::from_secs(2), 1000, 3);
            panic!("synthetic failure");
        });
        assert!(result.is_err());
        let dump = fs::read_to_string(&path).expect("hook wrote the post-mortem");
        assert!(dump.contains("\"panic\":\"synthetic failure"));
        assert!(dump.contains("\"dispatches\":1000"));
        assert!(!armed(), "unwinding the guard disarms the recorder");
        let _ = fs::remove_file(&path);
    }
}
