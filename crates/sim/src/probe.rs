//! Typed, zero-cost-when-disabled instrumentation.
//!
//! The engine's [`crate::TraceHook`] sees every raw message but knows
//! nothing about what the message *means*. This module is the structured
//! counterpart: nodes announce semantic events — a cell enqueued, a MACR
//! update with its innards, an RM cell turned around — through
//! [`Ctx::emit`](crate::Ctx::emit), and pluggable [`Probe`] sinks consume
//! them.
//!
//! ## Zero cost when off
//!
//! Probes are installed per thread with [`install_thread_probe`]. The
//! emit path first checks a thread-local flag; when no probe is
//! installed, the event is never even constructed (the closure passed to
//! `emit` is not called) and the whole call reduces to one predictable
//! load-and-branch. The deep-calendar micro-bench guards this.
//!
//! ## Determinism
//!
//! Probes only observe. A run with any probe attached is byte-identical
//! to an untraced run — the workspace `trace_determinism` test enforces
//! this. Because the tap is thread-local, parallel sweeps (`--jobs N`)
//! give each worker its own probe and its own output file.

use crate::engine::NodeId;
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::{self, Write};

/// One kind of semantic event, usable as a bitmask member of [`KindSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ProbeKind {
    /// A cell/packet was accepted into a queue.
    Enqueue = 1 << 0,
    /// A cell/packet finished service and left its queue.
    Dequeue = 1 << 1,
    /// A cell/packet was dropped (tail, policy or wire).
    Drop = 1 << 2,
    /// A rate allocator updated its MACR estimate.
    MacrUpdate = 1 << 3,
    /// A destination turned a forward RM cell around.
    RmTurnaround = 1 << 4,
    /// A TCP sender's cwnd/ssthresh changed.
    CwndChange = 1 << 5,
    /// A traffic session became active.
    SessionStart = 1 << 6,
    /// A traffic session went idle.
    SessionStop = 1 << 7,
}

impl ProbeKind {
    /// Stable lowercase name used in JSONL output and `--trace-filter`.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::Enqueue => "enqueue",
            ProbeKind::Dequeue => "dequeue",
            ProbeKind::Drop => "drop",
            ProbeKind::MacrUpdate => "macr",
            ProbeKind::RmTurnaround => "rm",
            ProbeKind::CwndChange => "cwnd",
            ProbeKind::SessionStart => "session_start",
            ProbeKind::SessionStop => "session_stop",
        }
    }
}

/// A set of [`ProbeKind`]s, e.g. parsed from a `--trace-filter` list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindSet(u16);

impl KindSet {
    /// Every kind.
    pub const ALL: KindSet = KindSet(0xff);
    /// No kind.
    pub const NONE: KindSet = KindSet(0);

    /// A set containing exactly `kind`.
    pub fn only(kind: ProbeKind) -> Self {
        KindSet(kind as u16)
    }

    /// Set union.
    pub fn with(self, kind: ProbeKind) -> Self {
        KindSet(self.0 | kind as u16)
    }

    /// Membership test.
    pub fn contains(self, kind: ProbeKind) -> bool {
        self.0 & kind as u16 != 0
    }

    /// Parse a comma-separated kind list: `enqueue`, `dequeue`, `drop`,
    /// `macr`, `rm`, `cwnd`, `session_start`, `session_stop`, plus the
    /// shorthands `session` (both session kinds), `queue` (enqueue +
    /// dequeue + drop) and `all`.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut set = KindSet::NONE;
        for raw in list.split(',') {
            let word = raw.trim();
            set = match word {
                "" => set,
                "all" => KindSet::ALL,
                "enqueue" => set.with(ProbeKind::Enqueue),
                "dequeue" => set.with(ProbeKind::Dequeue),
                "drop" => set.with(ProbeKind::Drop),
                "macr" => set.with(ProbeKind::MacrUpdate),
                "rm" => set.with(ProbeKind::RmTurnaround),
                "cwnd" => set.with(ProbeKind::CwndChange),
                "session_start" => set.with(ProbeKind::SessionStart),
                "session_stop" => set.with(ProbeKind::SessionStop),
                "session" => set
                    .with(ProbeKind::SessionStart)
                    .with(ProbeKind::SessionStop),
                "queue" => set
                    .with(ProbeKind::Enqueue)
                    .with(ProbeKind::Dequeue)
                    .with(ProbeKind::Drop),
                other => return Err(format!("unknown trace kind `{other}`")),
            };
        }
        Ok(set)
    }
}

impl Default for KindSet {
    fn default() -> Self {
        KindSet::ALL
    }
}

/// Why a cell/packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The bounded queue was full (tail drop).
    Overflow,
    /// A queue discipline or selective-discard policy rejected it.
    Policy,
    /// Lost on the wire (configured link loss).
    Wire,
}

impl DropReason {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Overflow => "overflow",
            DropReason::Policy => "policy",
            DropReason::Wire => "wire",
        }
    }
}

/// A semantic event. All payloads are plain scalars so that domain crates
/// (ATM, TCP) can emit without this crate depending on them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbeEvent {
    /// Accepted into the queue of `port`; `qlen` is the length after.
    Enqueue {
        /// Output-port index within the emitting node.
        port: u32,
        /// Queue length (items) after the enqueue.
        qlen: u32,
    },
    /// Left the queue of `port`; `qlen` is the length after.
    Dequeue {
        /// Output-port index within the emitting node.
        port: u32,
        /// Queue length (items) after the dequeue.
        qlen: u32,
    },
    /// Dropped at `port`.
    Drop {
        /// Output-port index within the emitting node.
        port: u32,
        /// Queue length (items) at the moment of the drop.
        qlen: u32,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A rate allocator finished a measurement interval.
    MacrUpdate {
        /// Output-port index within the emitting node.
        port: u32,
        /// New MACR estimate (cells/s or bytes/s, per domain).
        macr: f64,
        /// Residual-bandwidth error fed into the EWMA this interval.
        delta: f64,
        /// Mean absolute deviation of the estimator (NaN if untracked).
        dev: f64,
        /// Gain actually applied this interval (NaN if untracked).
        gain: f64,
    },
    /// A destination turned a forward RM cell around.
    RmTurnaround {
        /// Virtual circuit id.
        vc: u32,
        /// Explicit rate carried by the backward RM cell.
        er: f64,
        /// Congestion-indication bit on the backward cell.
        ci: bool,
    },
    /// A TCP sender's window state changed.
    CwndChange {
        /// Flow id.
        flow: u32,
        /// Congestion window, segments.
        cwnd: f64,
        /// Slow-start threshold, segments.
        ssthresh: f64,
    },
    /// A traffic session became active.
    SessionStart {
        /// Session (VC or flow) id.
        session: u32,
    },
    /// A traffic session went idle.
    SessionStop {
        /// Session (VC or flow) id.
        session: u32,
    },
}

impl ProbeEvent {
    /// The kind of this event.
    pub fn kind(&self) -> ProbeKind {
        match self {
            ProbeEvent::Enqueue { .. } => ProbeKind::Enqueue,
            ProbeEvent::Dequeue { .. } => ProbeKind::Dequeue,
            ProbeEvent::Drop { .. } => ProbeKind::Drop,
            ProbeEvent::MacrUpdate { .. } => ProbeKind::MacrUpdate,
            ProbeEvent::RmTurnaround { .. } => ProbeKind::RmTurnaround,
            ProbeEvent::CwndChange { .. } => ProbeKind::CwndChange,
            ProbeEvent::SessionStart { .. } => ProbeKind::SessionStart,
            ProbeEvent::SessionStop { .. } => ProbeKind::SessionStop,
        }
    }
}

/// A sink for semantic events.
pub trait Probe {
    /// Consume one event, delivered in deterministic simulation order.
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent);

    /// Flush any buffered output (called when the probe is uninstalled
    /// by [`take_thread_probe`] and at end of scope by harnesses).
    fn flush(&mut self) {}
}

thread_local! {
    static TAP_ON: Cell<bool> = const { Cell::new(false) };
    static TAP: RefCell<Option<Box<dyn Probe>>> = const { RefCell::new(None) };
}

/// Install `probe` as this thread's event tap, replacing (and returning)
/// any previous one. All engines running on this thread feed it.
pub fn install_thread_probe(probe: Box<dyn Probe>) -> Option<Box<dyn Probe>> {
    let prev = TAP.with(|t| t.borrow_mut().replace(probe));
    TAP_ON.with(|f| f.set(true));
    prev
}

/// Remove and return this thread's event tap, flushing it first. The
/// untraced fast path is restored.
pub fn take_thread_probe() -> Option<Box<dyn Probe>> {
    TAP_ON.with(|f| f.set(false));
    let mut probe = TAP.with(|t| t.borrow_mut().take());
    if let Some(p) = probe.as_mut() {
        p.flush();
    }
    probe
}

/// Flush this thread's probe (if any) without uninstalling it.
///
/// Checkpointing needs this: a checkpoint records the trace file's byte
/// offset at the snapshot instant, which is only meaningful once every
/// event up to that instant has reached the file.
pub fn flush_thread_probe() {
    TAP.with(|tap| {
        if let Some(p) = tap.borrow_mut().as_mut() {
            p.flush();
        }
    });
}

/// True when a probe is installed on this thread.
#[inline]
pub fn probe_enabled() -> bool {
    TAP_ON.with(|f| f.get())
}

/// Emit an event to this thread's probe, if any. `make` is only called
/// when a probe is installed, so the disabled path costs one predictable
/// thread-local load and branch.
#[inline]
pub fn emit(t: SimTime, node: NodeId, make: impl FnOnce() -> ProbeEvent) {
    if !probe_enabled() {
        return;
    }
    deliver(t, node, make());
}

#[cold]
#[inline(never)]
fn deliver(t: SimTime, node: NodeId, ev: ProbeEvent) {
    TAP.with(|tap| {
        if let Some(p) = tap.borrow_mut().as_mut() {
            p.on_event(t, node, &ev);
        }
    });
}

/// Format an `f64` as a JSON value (`null` for NaN/infinite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render one event as a single-line JSON object (no trailing newline).
///
/// This is the record format of the `phantom-trace/1` schema: every line
/// has `t` (seconds), `node`, `kind`, plus kind-specific fields.
pub fn event_to_json(t: SimTime, node: NodeId, ev: &ProbeEvent) -> String {
    let head = format!("{{\"t\":{},\"node\":{}", json_f64(t.as_secs_f64()), node.0);
    let kind = ev.kind().name();
    match *ev {
        ProbeEvent::Enqueue { port, qlen } | ProbeEvent::Dequeue { port, qlen } => {
            format!("{head},\"kind\":\"{kind}\",\"port\":{port},\"qlen\":{qlen}}}")
        }
        ProbeEvent::Drop { port, qlen, reason } => format!(
            "{head},\"kind\":\"{kind}\",\"port\":{port},\"qlen\":{qlen},\"reason\":\"{}\"}}",
            reason.name()
        ),
        ProbeEvent::MacrUpdate {
            port,
            macr,
            delta,
            dev,
            gain,
        } => format!(
            "{head},\"kind\":\"{kind}\",\"port\":{port},\"macr\":{},\"delta\":{},\"dev\":{},\"gain\":{}}}",
            json_f64(macr),
            json_f64(delta),
            json_f64(dev),
            json_f64(gain)
        ),
        ProbeEvent::RmTurnaround { vc, er, ci } => format!(
            "{head},\"kind\":\"{kind}\",\"vc\":{vc},\"er\":{},\"ci\":{ci}}}",
            json_f64(er)
        ),
        ProbeEvent::CwndChange {
            flow,
            cwnd,
            ssthresh,
        } => format!(
            "{head},\"kind\":\"{kind}\",\"flow\":{flow},\"cwnd\":{},\"ssthresh\":{}}}",
            json_f64(cwnd),
            json_f64(ssthresh)
        ),
        ProbeEvent::SessionStart { session } | ProbeEvent::SessionStop { session } => {
            format!("{head},\"kind\":\"{kind}\",\"session\":{session}}}")
        }
    }
}

/// A probe writing one JSON object per line (`phantom-trace/1`).
///
/// If a manifest line is supplied it is written first, so every trace
/// file self-describes its provenance.
pub struct JsonlProbe<W: Write> {
    w: io::BufWriter<W>,
    /// Events written (manifest line excluded).
    written: u64,
}

impl<W: Write> JsonlProbe<W> {
    /// A probe writing to `w`.
    pub fn new(w: W) -> Self {
        JsonlProbe {
            w: io::BufWriter::new(w),
            written: 0,
        }
    }

    /// A probe writing to `w`, with `manifest_json` (a single-line JSON
    /// object, typically `phantom_metrics::Manifest::to_json`) as the
    /// first record.
    pub fn with_manifest(w: W, manifest_json: &str) -> io::Result<Self> {
        let mut p = Self::new(w);
        writeln!(p.w, "{manifest_json}")?;
        Ok(p)
    }

    /// Events written so far (manifest line excluded).
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Probe for JsonlProbe<W> {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        // I/O errors deliberately do not panic mid-run (that would make
        // a full disk perturb the simulation's observable behavior only
        // via timing); the line is lost and `written` not incremented.
        if writeln!(self.w, "{}", event_to_json(t, node, ev)).is_ok() {
            self.written += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// A bounded in-memory ring of the most recent events, for post-mortem
/// dumps when an assertion fails deep inside a run.
pub struct RingProbe {
    ring: VecDeque<(SimTime, NodeId, ProbeEvent)>,
    cap: usize,
    seen: u64,
}

impl RingProbe {
    /// A ring keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        RingProbe {
            ring: VecDeque::with_capacity(cap),
            cap,
            seen: 0,
        }
    }

    /// Total events observed (including ones already evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, NodeId, ProbeEvent)> {
        self.ring.iter()
    }

    /// Render the retained events as JSONL (for a post-mortem dump).
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, node, ev) in &self.ring {
            out.push_str(&event_to_json(*t, *node, ev));
            out.push('\n');
        }
        out
    }
}

impl Probe for RingProbe {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((t, node, *ev));
        self.seen += 1;
    }
}

/// A probe passing through only events whose kind is in a [`KindSet`].
pub struct FilterProbe<P: Probe> {
    kinds: KindSet,
    inner: P,
}

impl<P: Probe> FilterProbe<P> {
    /// Wrap `inner`, forwarding only `kinds`.
    pub fn new(kinds: KindSet, inner: P) -> Self {
        FilterProbe { kinds, inner }
    }

    /// The wrapped probe.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Probe> Probe for FilterProbe<P> {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        if self.kinds.contains(ev.kind()) {
            self.inner.on_event(t, node, ev);
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// A probe fanning every event out to several sinks, in order.
#[derive(Default)]
pub struct TeeProbe {
    sinks: Vec<Box<dyn Probe>>,
}

impl TeeProbe {
    /// An empty tee.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink; returns `self` for chaining.
    pub fn and(mut self, sink: Box<dyn Probe>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Probe for TeeProbe {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        for s in &mut self.sinks {
            s.on_event(t, node, ev);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// A probe counting events per kind — cheap acceptance checks in tests.
#[derive(Default)]
pub struct CountingProbe {
    counts: [u64; 8],
}

impl CountingProbe {
    /// A fresh, all-zero counter probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(kind: ProbeKind) -> usize {
        (kind as u16).trailing_zeros() as usize
    }

    /// Events of `kind` observed.
    pub fn count(&self, kind: ProbeKind) -> u64 {
        self.counts[Self::slot(kind)]
    }

    /// Events observed across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Probe for CountingProbe {
    fn on_event(&mut self, _t: SimTime, _node: NodeId, ev: &ProbeEvent) {
        self.counts[Self::slot(ev.kind())] += 1;
    }
}

/// Uninstalls this thread's probe when dropped, restoring the fast path
/// even on panic/early return. Holds the flushed probe for inspection.
pub struct ProbeGuard;

impl ProbeGuard {
    /// Install `probe` for the lifetime of the returned guard.
    pub fn install(probe: Box<dyn Probe>) -> Self {
        install_thread_probe(probe);
        ProbeGuard
    }

    /// Uninstall early and recover the probe (flushed).
    pub fn take(self) -> Option<Box<dyn Probe>> {
        let p = take_thread_probe();
        std::mem::forget(self);
        p
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        let _ = take_thread_probe();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn kindset_parse_round_trip() {
        let s = KindSet::parse("macr,drop").unwrap();
        assert!(s.contains(ProbeKind::MacrUpdate));
        assert!(s.contains(ProbeKind::Drop));
        assert!(!s.contains(ProbeKind::Enqueue));
        assert_eq!(KindSet::parse("all").unwrap(), KindSet::ALL);
        let q = KindSet::parse("queue").unwrap();
        assert!(q.contains(ProbeKind::Enqueue) && q.contains(ProbeKind::Drop));
        let sess = KindSet::parse("session").unwrap();
        assert!(sess.contains(ProbeKind::SessionStart) && sess.contains(ProbeKind::SessionStop));
        assert!(KindSet::parse("bogus").is_err());
    }

    #[test]
    fn emit_skips_construction_when_disabled() {
        assert!(!probe_enabled());
        let mut made = false;
        emit(t(1), NodeId(0), || {
            made = true;
            ProbeEvent::SessionStart { session: 0 }
        });
        assert!(!made, "event must not be constructed with no probe");
    }

    #[test]
    fn thread_tap_install_take() {
        let _ = take_thread_probe();
        install_thread_probe(Box::new(CountingProbe::new()));
        emit(t(1), NodeId(2), || ProbeEvent::Drop {
            port: 0,
            qlen: 3,
            reason: DropReason::Overflow,
        });
        emit(t(2), NodeId(2), || ProbeEvent::Enqueue { port: 0, qlen: 4 });
        let probe = take_thread_probe().unwrap();
        // Box<dyn Probe> has no downcast; re-route through a fresh probe
        // to check the tap is off instead.
        drop(probe);
        assert!(!probe_enabled());
        let mut made = false;
        emit(t(3), NodeId(2), || {
            made = true;
            ProbeEvent::Enqueue { port: 0, qlen: 1 }
        });
        assert!(!made);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingProbe::new(2);
        for i in 0..5u32 {
            ring.on_event(
                t(u64::from(i)),
                NodeId(0),
                &ProbeEvent::SessionStart { session: i },
            );
        }
        assert_eq!(ring.seen(), 5);
        let kept: Vec<u32> = ring
            .events()
            .map(|(_, _, ev)| match ev {
                ProbeEvent::SessionStart { session } => *session,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(ring.dump_jsonl().lines().count(), 2);
    }

    #[test]
    fn filter_passes_only_selected_kinds() {
        let mut f = FilterProbe::new(KindSet::only(ProbeKind::MacrUpdate), CountingProbe::new());
        f.on_event(t(1), NodeId(0), &ProbeEvent::Enqueue { port: 0, qlen: 1 });
        f.on_event(
            t(2),
            NodeId(0),
            &ProbeEvent::MacrUpdate {
                port: 0,
                macr: 1.0,
                delta: 0.5,
                dev: 0.1,
                gain: 0.0625,
            },
        );
        let inner = f.into_inner();
        assert_eq!(inner.total(), 1);
        assert_eq!(inner.count(ProbeKind::MacrUpdate), 1);
    }

    #[test]
    fn tee_fans_out() {
        let mut tee = TeeProbe::new()
            .and(Box::new(CountingProbe::new()))
            .and(Box::new(RingProbe::new(4)));
        tee.on_event(t(1), NodeId(1), &ProbeEvent::Dequeue { port: 2, qlen: 0 });
        // Sinks are boxed away; the absence of panics plus flush coverage
        // is what this exercises.
        tee.flush();
    }

    #[test]
    fn jsonl_lines_are_valid_single_objects() {
        let mut buf = Vec::new();
        {
            let mut p =
                JsonlProbe::with_manifest(&mut buf, "{\"schema\":\"phantom-trace/1\"}").unwrap();
            p.on_event(
                t(1),
                NodeId(4),
                &ProbeEvent::MacrUpdate {
                    port: 1,
                    macr: 120.5,
                    delta: -3.5,
                    dev: f64::NAN,
                    gain: 0.0625,
                },
            );
            p.on_event(
                t(2),
                NodeId(4),
                &ProbeEvent::Drop {
                    port: 1,
                    qlen: 20,
                    reason: DropReason::Policy,
                },
            );
            p.flush();
            assert_eq!(p.written(), 2);
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("phantom-trace/1"));
        assert!(lines[1].contains("\"kind\":\"macr\""));
        assert!(lines[1].contains("\"dev\":null"), "NaN must encode as null");
        assert!(lines[2].contains("\"reason\":\"policy\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn guard_restores_fast_path_on_drop() {
        let _ = take_thread_probe();
        {
            let _g = ProbeGuard::install(Box::new(CountingProbe::new()));
            assert!(probe_enabled());
        }
        assert!(!probe_enabled());
    }
}
