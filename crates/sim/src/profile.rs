//! In-run engine profiler: where does the wall time go?
//!
//! The probes in [`crate::probe`] make the *simulated protocol*
//! observable; this module makes the *engine itself* observable. When
//! profiling is enabled, the engine's run loops attribute wall time and
//! event counts to three orthogonal views:
//!
//! * **per concrete node type** — one bucket per typed arena (the PR 6
//!   arena split), so a metro run can say "61% of the time is spent
//!   inside `AtmSwitch` dispatches";
//! * **per event kind** — via an optional message classifier installed
//!   with [`crate::Engine::set_event_classifier`] ("cell" vs the timer
//!   flavours vs admin commands);
//! * **per calendar phase** — time popping the wheel, and inside the
//!   cold `advance` path split into bitmap scan, overflow/far-slab
//!   promotion and the current-slice sort, plus wheel-occupancy and
//!   batching-efficiency counters.
//!
//! ## Cost model
//!
//! Profiling is off by default and *always compiled* — no feature flag,
//! no rebuild to turn it on. Disabled, the only cost is one predictable
//! thread-local load-and-branch per `run_until`/`run_to_completion`
//! call (not per event) plus one `Option` check per calendar push; the
//! engine micro-bench guards this. Enabled, the run loop takes two
//! monotonic-clock readings per event, chained so every nanosecond of
//! loop wall time is attributed to exactly one bucket: the interval
//! from the previous dispatch's end to the pop's return is calendar
//! time, the interval across the dispatch is the node's (and kind's)
//! self time. Totals therefore sum to the measured loop wall time by
//! construction.
//!
//! ## Determinism
//!
//! The profiler only reads clocks and bumps counters — the dispatch
//! order, RNG streams and every simulation-visible value are untouched.
//! A profiled run produces byte-identical traces and metrics to an
//! unprofiled one.
//!
//! ## Usage
//!
//! Harnesses bracket a run like [`crate::telemetry::begin_run`]:
//!
//! ```
//! use phantom_sim::{profile, Engine, SimTime};
//!
//! let marker = profile::begin_profile();
//! let mut e = Engine::<u32>::new(1);
//! e.run_until(SimTime::from_millis(1));
//! let report = marker.finish();
//! assert_eq!(report.dispatches, 0);
//! ```
//!
//! The thread-local request means scenario code that builds its engine
//! internally (the `repro` sweep) is profiled without plumbing; code
//! that owns its engine can also force instrumentation directly with
//! [`crate::Engine::profile`].

use std::cell::{Cell, RefCell};

/// Counters and (while profiling) phase timings of the timer-wheel
/// calendar. Counter fields accumulate only while profiling is enabled;
/// `*_ns` fields are measured inside the cold `advance` path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Pushes that landed in the sorted active run (current slice).
    pub active_inserts: u64,
    /// Pushes that landed in a near-future wheel bucket.
    pub wheel_pushes: u64,
    /// Pushes past the wheel horizon: far-slab payload + overflow-heap key.
    pub far_pushes: u64,
    /// Cursor advances to a new occupied slice.
    pub advances: u64,
    /// Events promoted back from the overflow heap into the window.
    pub promoted: u64,
    /// Entries ordered by current-slice sorts, summed over advances.
    pub sorted_entries: u64,
    /// Sum over advances of the occupied-slot count (wheel occupancy).
    pub occupied_slices_sum: u64,
    /// Largest occupied-slot count seen at any advance.
    pub occupied_slices_max: u64,
    /// Total wall time inside `advance`.
    pub advance_ns: u64,
    /// `advance` phase: scanning the occupancy bitmap for the target slice.
    pub scan_ns: u64,
    /// `advance` phase: overflow-heap pops + far-slab claims.
    pub promote_ns: u64,
    /// `advance` phase: draining the cursor bucket and sorting the run.
    pub sort_ns: u64,
}

impl CalendarStats {
    fn merge(&mut self, o: &CalendarStats) {
        self.active_inserts += o.active_inserts;
        self.wheel_pushes += o.wheel_pushes;
        self.far_pushes += o.far_pushes;
        self.advances += o.advances;
        self.promoted += o.promoted;
        self.sorted_entries += o.sorted_entries;
        self.occupied_slices_sum += o.occupied_slices_sum;
        self.occupied_slices_max = self.occupied_slices_max.max(o.occupied_slices_max);
        self.advance_ns += o.advance_ns;
        self.scan_ns += o.scan_ns;
        self.promote_ns += o.promote_ns;
        self.sort_ns += o.sort_ns;
    }
}

/// Per-run-loop accumulator used by the engine's instrumented loop.
/// Arena buckets are indexed by arena id (a plain array access per
/// event); kind buckets are a tiny linear-probed list keyed by the
/// classifier's `&'static str` (pointer equality first, so the common
/// case is one comparison).
pub(crate) struct LoopProf {
    pub(crate) pop_ns: u64,
    pub(crate) wall_ns: u64,
    pub(crate) dispatches: u64,
    pub(crate) events: u64,
    arenas: Vec<(u64, u64)>,
    kinds: Vec<(&'static str, u64, u64)>,
}

impl LoopProf {
    pub(crate) fn new(n_arenas: usize) -> Self {
        LoopProf {
            pop_ns: 0,
            wall_ns: 0,
            dispatches: 0,
            events: 0,
            arenas: vec![(0, 0); n_arenas],
            kinds: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn note(&mut self, arena: usize, kind: &'static str, ns: u64, events: u64) {
        self.dispatches += 1;
        self.events += events;
        let a = &mut self.arenas[arena];
        a.0 += events;
        a.1 += ns;
        for k in &mut self.kinds {
            if std::ptr::eq(k.0, kind) || k.0 == kind {
                k.1 += events;
                k.2 += ns;
                return;
            }
        }
        self.kinds.push((kind, events, ns));
    }
}

thread_local! {
    static PROF_ON: Cell<bool> = const { Cell::new(false) };
    static COLLECT: RefCell<Collect> = RefCell::new(Collect::default());
}

#[derive(Default)]
struct Collect {
    wall_ns: u64,
    pop_ns: u64,
    dispatches: u64,
    events: u64,
    nodes: Vec<(&'static str, u64, u64)>,
    kinds: Vec<(&'static str, u64, u64)>,
    cal: CalendarStats,
}

fn merge_named(into: &mut Vec<(&'static str, u64, u64)>, name: &'static str, events: u64, ns: u64) {
    for e in into.iter_mut() {
        if std::ptr::eq(e.0, name) || e.0 == name {
            e.1 += events;
            e.2 += ns;
            return;
        }
    }
    into.push((name, events, ns));
}

/// True when a profile bracket is open on this thread. The engine
/// checks this once per run call, not per event.
#[inline]
pub fn enabled() -> bool {
    PROF_ON.with(|f| f.get())
}

/// Merge one engine run loop's accumulation into the thread collector.
pub(crate) fn merge_run(prof: LoopProf, cal: &CalendarStats, arena_names: &[&'static str]) {
    COLLECT.with(|c| {
        let mut c = c.borrow_mut();
        c.wall_ns += prof.wall_ns;
        c.pop_ns += prof.pop_ns;
        c.dispatches += prof.dispatches;
        c.events += prof.events;
        for (i, &(events, ns)) in prof.arenas.iter().enumerate() {
            if events > 0 || ns > 0 {
                merge_named(&mut c.nodes, arena_names[i], events, ns);
            }
        }
        for &(name, events, ns) in &prof.kinds {
            merge_named(&mut c.kinds, name, events, ns);
        }
        c.cal.merge(cal);
    });
}

/// One attribution bucket of a [`ProfileReport`]: a name, the events it
/// accounts for, and its self time in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Bucket name: a concrete node type, an event kind, or a calendar
    /// phase.
    pub name: String,
    /// Events attributed to this bucket (coalesced work included; for
    /// calendar phases, the phase's own unit — pops, advances, promoted
    /// entries, sorted entries).
    pub events: u64,
    /// Wall time attributed to this bucket, nanoseconds.
    pub self_ns: u64,
}

/// The harvest of one profile bracket. Self-times are a partition of
/// the profiled loop wall time: `nodes` (equivalently `kinds`) plus
/// `phases` sum to `wall_ns` up to clock-reading granularity.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Total wall time spent inside profiled run loops, nanoseconds.
    pub wall_ns: u64,
    /// Dispatches (calendar pops that delivered an event).
    pub dispatches: u64,
    /// Logical events processed, coalesced work included.
    pub events: u64,
    /// Self time per concrete node type, largest first.
    pub nodes: Vec<ProfileEntry>,
    /// Self time per event kind, largest first. Without a classifier
    /// every dispatch lands in the `"event"` bucket.
    pub kinds: Vec<ProfileEntry>,
    /// Self time per calendar phase: `calendar.pop` (wheel pops outside
    /// `advance`), `calendar.advance.scan`, `calendar.advance.promote`
    /// (overflow heap + far slab) and `calendar.advance.sort`.
    pub phases: Vec<ProfileEntry>,
    /// Raw calendar counters (push routing, occupancy, promotions).
    pub calendar: CalendarStats,
}

impl ProfileReport {
    /// Sum of all attributed self time (nodes + calendar phases),
    /// nanoseconds. Should be within clock granularity of `wall_ns`.
    pub fn attributed_ns(&self) -> u64 {
        self.nodes.iter().map(|e| e.self_ns).sum::<u64>()
            + self.phases.iter().map(|e| e.self_ns).sum::<u64>()
    }

    /// Batching efficiency: logical events per dispatched calendar
    /// event (1.0 when no coalescing happened).
    pub fn batching(&self) -> f64 {
        if self.dispatches == 0 {
            1.0
        } else {
            self.events as f64 / self.dispatches as f64
        }
    }

    /// Mean occupied wheel slots at cursor advances.
    pub fn occupied_mean(&self) -> f64 {
        if self.calendar.advances == 0 {
            0.0
        } else {
            self.calendar.occupied_slices_sum as f64 / self.calendar.advances as f64
        }
    }
}

/// Open profile bracket; see [`begin_profile`].
#[derive(Debug)]
pub struct ProfileMarker {
    prev: bool,
}

/// Start profiling every engine run on this thread and reset the
/// collector. Close the bracket with [`ProfileMarker::finish`] to stop
/// and harvest the [`ProfileReport`].
pub fn begin_profile() -> ProfileMarker {
    let prev = PROF_ON.with(|f| f.replace(true));
    COLLECT.with(|c| *c.borrow_mut() = Collect::default());
    ProfileMarker { prev }
}

impl ProfileMarker {
    /// Close the bracket: restore the previous profiling state and
    /// return everything collected since [`begin_profile`].
    pub fn finish(self) -> ProfileReport {
        PROF_ON.with(|f| f.set(self.prev));
        take_report()
    }
}

/// Take (and reset) everything collected on this thread without
/// touching the bracket state — the harvest path when profiling was
/// forced per engine via [`crate::Engine::profile`] rather than opened
/// with [`begin_profile`].
pub fn take_report() -> ProfileReport {
    let c = COLLECT.with(|c| std::mem::take(&mut *c.borrow_mut()));
    let mut nodes: Vec<ProfileEntry> = c
        .nodes
        .into_iter()
        .map(|(n, ev, ns)| ProfileEntry {
            name: n.to_string(),
            events: ev,
            self_ns: ns,
        })
        .collect();
    let mut kinds: Vec<ProfileEntry> = c
        .kinds
        .into_iter()
        .map(|(n, ev, ns)| ProfileEntry {
            name: n.to_string(),
            events: ev,
            self_ns: ns,
        })
        .collect();
    let by_time = |e: &ProfileEntry| (u64::MAX - e.self_ns, e.name.clone());
    nodes.sort_by_key(by_time);
    kinds.sort_by_key(by_time);
    let cal = c.cal;
    let phases = vec![
        ProfileEntry {
            name: "calendar.pop".to_string(),
            events: c.dispatches,
            self_ns: c.pop_ns.saturating_sub(cal.advance_ns),
        },
        ProfileEntry {
            name: "calendar.advance.scan".to_string(),
            events: cal.advances,
            self_ns: cal.scan_ns,
        },
        ProfileEntry {
            name: "calendar.advance.promote".to_string(),
            events: cal.promoted,
            self_ns: cal.promote_ns,
        },
        ProfileEntry {
            name: "calendar.advance.sort".to_string(),
            events: cal.sorted_entries,
            self_ns: cal.sort_ns,
        },
    ];
    ProfileReport {
        wall_ns: c.wall_ns,
        dispatches: c.dispatches,
        events: c.events,
        nodes,
        kinds,
        phases,
        calendar: cal,
    }
}

impl Drop for ProfileMarker {
    fn drop(&mut self) {
        // A dropped (unfinished) marker must not leave profiling stuck
        // on for unrelated later runs on this thread.
        PROF_ON.with(|f| f.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_toggles_and_resets() {
        assert!(!enabled());
        let m = begin_profile();
        assert!(enabled());
        let r = m.finish();
        assert!(!enabled());
        assert_eq!(r.dispatches, 0);
        assert_eq!(r.wall_ns, 0);
        assert_eq!(r.phases.len(), 4, "all calendar phases always present");
    }

    #[test]
    fn merge_accumulates_by_name() {
        let m = begin_profile();
        let mut p = LoopProf::new(2);
        p.note(0, "cell", 100, 1);
        p.note(1, "cell", 50, 2);
        p.note(0, "timer", 25, 1);
        p.pop_ns = 30;
        p.wall_ns = 205;
        let cal = CalendarStats {
            active_inserts: 3,
            advances: 1,
            advance_ns: 10,
            scan_ns: 4,
            promote_ns: 3,
            sort_ns: 3,
            ..CalendarStats::default()
        };
        merge_run(p, &cal, &["a::A", "b::B"]);
        let mut p2 = LoopProf::new(2);
        p2.note(0, "cell", 10, 1);
        p2.wall_ns = 10;
        merge_run(p2, &CalendarStats::default(), &["a::A", "b::B"]);
        let r = m.finish();
        assert_eq!(r.dispatches, 4);
        assert_eq!(r.events, 5);
        assert_eq!(r.wall_ns, 215);
        assert_eq!(r.nodes[0].name, "a::A");
        assert_eq!(r.nodes[0].self_ns, 135);
        assert_eq!(r.kinds[0].name, "cell");
        assert_eq!(r.kinds[0].events, 4);
        assert_eq!(r.kinds[0].self_ns, 160);
        // pop phase excludes time measured inside advance.
        assert_eq!(r.phases[0].name, "calendar.pop");
        assert_eq!(r.phases[0].self_ns, 20);
        assert!((r.batching() - 1.25).abs() < 1e-12);
        // nodes + phases partition wall time (here: 185 dispatch + 30 pop).
        assert_eq!(r.attributed_ns(), 215);
    }

    #[test]
    fn finish_restores_outer_bracket_state() {
        let outer = begin_profile();
        let inner = begin_profile();
        let _ = inner.finish();
        assert!(enabled(), "inner finish keeps the outer bracket open");
        let _ = outer.finish();
        assert!(!enabled());
    }
}
