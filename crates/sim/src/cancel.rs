//! Cooperative run cancellation.
//!
//! A long-running [`crate::Engine::run_until`] call can be asked to stop
//! early by another thread: install a shared [`CancelToken`] on the
//! engine's thread (via [`CancelGuard`]), hand a clone to the
//! controller, and let it call [`CancelToken::cancel`]. The engine
//! checks the token at *calendar-slice* granularity — once per
//! [`crate::event::SLICE_NS`]-nanosecond wheel slice the clock enters,
//! with an event-count fallback for pathological single-slice runs — so
//! cancel latency is bounded without a per-event atomic load showing up
//! on the hot path's profile.
//!
//! Cancellation is cooperative and *clean*: the engine finishes the
//! event it is dispatching, stops popping, and leaves its state
//! consistent (every artifact probe sees complete events only, so a
//! cancelled run's trace is truncated but lintable). A token that is
//! already cancelled when `run_until` begins stops the run before the
//! first pop, so sliced drivers (heartbeat loops) observe a cancel at
//! the very next slice no matter how the horizon is diced.
//!
//! Like tracing and the flight recorder, an armed token forces the
//! serial event loop even when shards were requested — a cancelled
//! sharded epoch would have no deterministic truncation point. Servers
//! that cancel jobs run them serially, so this costs nothing in
//! practice.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag: cloned freely, flipped once.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to the engine at its
    /// next calendar-slice check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    /// Token engines on this thread consult; `None` = never cancelled.
    static TOKEN: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` for engines run on this thread, returning the
/// previous installation. Prefer [`CancelGuard`] for panic-safe
/// bracketing.
pub fn set_token(token: Option<CancelToken>) -> Option<CancelToken> {
    TOKEN.with(|t| t.replace(token))
}

/// The token currently installed on this thread, if any.
pub fn token() -> Option<CancelToken> {
    TOKEN.with(|t| t.borrow().clone())
}

/// RAII bracket around [`set_token`]: restores the previous token on
/// drop, including during unwinding.
pub struct CancelGuard {
    prev: Option<CancelToken>,
}

impl CancelGuard {
    /// Install `token` until the guard drops.
    pub fn new(token: CancelToken) -> Self {
        CancelGuard {
            prev: set_token(Some(token)),
        }
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        set_token(self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn guard_installs_and_restores() {
        assert!(token().is_none());
        let outer = CancelToken::new();
        let _g = CancelGuard::new(outer.clone());
        assert!(token().is_some());
        {
            let inner = CancelToken::new();
            let _g2 = CancelGuard::new(inner.clone());
            inner.cancel();
            assert!(token().expect("installed").is_cancelled());
        }
        // inner guard dropped: outer token back, still un-cancelled
        assert!(!token().expect("restored").is_cancelled());
        drop(_g);
        assert!(token().is_none());
    }
}
