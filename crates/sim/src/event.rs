//! The pending-event queue.
//!
//! A classic calendar for discrete-event simulation: a binary heap ordered
//! by `(time, sequence)`. The monotonically increasing sequence number makes
//! the ordering of same-timestamp events FIFO, which keeps runs
//! deterministic regardless of heap internals.

use crate::engine::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled delivery of a message `M` to a node.
pub struct Event<M> {
    /// When the message is delivered.
    pub time: SimTime,
    /// Tie-breaker: insertion order among equal timestamps.
    pub seq: u64,
    /// Destination node.
    pub dst: NodeId,
    /// The payload.
    pub msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Among equal times, the lowest sequence number wins (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events, earliest first.
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule delivery of `msg` to `dst` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, dst: NodeId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            dst,
            msg,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), NodeId(0), "c");
        q.push(SimTime::from_micros(10), NodeId(0), "a");
        q.push(SimTime::from_micros(20), NodeId(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, NodeId(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), NodeId(0), 1);
        q.push(SimTime::from_micros(30), NodeId(0), 3);
        assert_eq!(q.pop().unwrap().msg, 1);
        q.push(SimTime::from_micros(20), NodeId(0), 2);
        assert_eq!(q.pop().unwrap().msg, 2);
        assert_eq!(q.pop().unwrap().msg, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(42), NodeId(1), ());
        q.push(SimTime::from_micros(7), NodeId(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 2);
    }
}
