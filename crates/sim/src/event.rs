//! The pending-event queue.
//!
//! A classic calendar for discrete-event simulation, organised for the hot
//! path: a binary heap of small `(time, seq, slot)` keys plus a slab of
//! message payloads. Only the 24-byte keys move during heap sift
//! operations; the payloads (which for ATM scenarios are multi-word enums)
//! are written once on push and read once on pop. The monotonically
//! increasing sequence number makes the ordering of same-timestamp events
//! FIFO, which keeps runs deterministic regardless of heap internals.

use crate::engine::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled delivery of a message `M` to a node.
pub struct Event<M> {
    /// When the message is delivered.
    pub time: SimTime,
    /// Tie-breaker: insertion order among equal timestamps.
    pub seq: u64,
    /// Destination node.
    pub dst: NodeId,
    /// The payload.
    pub msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Among equal times, the lowest sequence number wins (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Heap entry: the ordering key plus the index of the payload slot.
///
/// `slot` takes no part in the ordering — `seq` is unique, so `(time, seq)`
/// is already a total order.
#[derive(Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed, same convention as `Event`.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A payload slot: either holds a pending message or links into the
/// intrusive free list (so releasing a slot is one write, with no separate
/// free-index vector to maintain).
enum Slot<M> {
    Full(NodeId, M),
    Free(u32),
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// Priority queue of pending events, earliest first.
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapKey>,
    slots: Vec<Slot<M>>,
    free_head: u32,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NIL,
            next_seq: 0,
        }
    }

    /// Schedule delivery of `msg` to `dst` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, dst: NodeId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NIL {
            let s = self.free_head;
            match std::mem::replace(&mut self.slots[s as usize], Slot::Full(dst, msg)) {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(..) => unreachable!("free head points at a full slot"),
            }
            s
        } else {
            assert!(
                self.slots.len() < NIL as usize,
                "event queue slot index overflow"
            );
            self.slots.push(Slot::Full(dst, msg));
            (self.slots.len() - 1) as u32
        };
        self.heap.push(HeapKey { time, seq, slot });
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Event<M>> {
        let key = self.heap.pop()?;
        Some(self.claim(key))
    }

    /// Remove and return the earliest event if its timestamp is `<= t`.
    ///
    /// This is the engine's `run_until` hot path: one call decides both
    /// "is there work" and "is it due", instead of a peek followed by a
    /// pop.
    #[inline]
    pub fn pop_at_or_before(&mut self, t: SimTime) -> Option<Event<M>> {
        if self.heap.peek()?.time > t {
            return None;
        }
        let key = self.heap.pop().expect("peeked key vanished");
        Some(self.claim(key))
    }

    #[inline]
    fn claim(&mut self, key: HeapKey) -> Event<M> {
        let released = Slot::Free(self.free_head);
        match std::mem::replace(&mut self.slots[key.slot as usize], released) {
            Slot::Full(dst, msg) => {
                self.free_head = key.slot;
                Event {
                    time: key.time,
                    seq: key.seq,
                    dst,
                    msg,
                }
            }
            Slot::Free(..) => unreachable!("heap key points at an empty slot"),
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), NodeId(0), "c");
        q.push(SimTime::from_micros(10), NodeId(0), "a");
        q.push(SimTime::from_micros(20), NodeId(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, NodeId(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), NodeId(0), 1);
        q.push(SimTime::from_micros(30), NodeId(0), 3);
        assert_eq!(q.pop().unwrap().msg, 1);
        q.push(SimTime::from_micros(20), NodeId(0), 2);
        assert_eq!(q.pop().unwrap().msg, 2);
        assert_eq!(q.pop().unwrap().msg, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(42), NodeId(1), ());
        q.push(SimTime::from_micros(7), NodeId(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), NodeId(0), 1);
        q.push(SimTime::from_micros(20), NodeId(0), 2);
        assert!(q.pop_at_or_before(SimTime::from_micros(5)).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::from_micros(10)).unwrap().msg, 1);
        assert!(q.pop_at_or_before(SimTime::from_micros(19)).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::from_micros(25)).unwrap().msg, 2);
        assert!(q.pop_at_or_before(SimTime::MAX).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..4u32 {
            for i in 0..8u32 {
                q.push(SimTime::from_micros((round * 8 + i) as u64), NodeId(0), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // Every round drains fully, so the slab never needs more than one
        // round's worth of slots.
        assert!(q.slots.len() <= 8, "slab grew to {}", q.slots.len());
        assert!(q.is_empty());
    }
}
