//! The pending-event queue.
//!
//! A hierarchical timer wheel organised for the ATM hot path, where almost
//! every event is a cell-time or propagation-delay timer a few microseconds
//! to a few milliseconds out. Near-future events land in one of
//! [`WHEEL_SLOTS`] ring buckets of [`SLICE_NS`]-nanosecond slices (a plain
//! `Vec` append — no sift, no comparisons); an occupancy bitmap makes
//! finding the next non-empty slice a handful of word scans. Far-future
//! events (session starts hundreds of milliseconds out, long RTT timers)
//! wait in an overflow heap and are promoted lazily as the cursor advances.
//!
//! Delivery order is *exactly* the `(time, seq)` total order of the
//! classic binary-heap calendar this replaces: each slice is drained into a
//! small sorted "active" run before anything is popped, so same-timestamp
//! events stay FIFO by insertion and every trace, analysis baseline and CSV
//! is byte-identical across calendars. The property test at the bottom pins
//! the wheel against a plain binary heap kept as the `#[cfg(test)]` oracle.
//!
//! Near-future payloads live *inline* in the ring buckets: a push is one
//! contiguous append, a slice drain is one contiguous move plus a small
//! sort, and nothing is chased through a side table. With tens of
//! thousands of cells in flight on WAN topologies, the in-flight working
//! set is streamed bucket by bucket instead of hammering a random-access
//! slab — that cache behaviour, not asymptotics, is where the calendar
//! spends its time. Only far-future events pay for indirection: their
//! payloads wait in a small slab of message slots (with an intrusive free
//! list) while 24-byte `(time, seq, slot)` keys sit in the overflow heap.

use crate::engine::NodeId;
use crate::profile::CalendarStats;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

/// Calendar identifier recorded in benchmark artifacts (the
/// `phantom-bench/3` `calendar` field), so a benchmark record says which
/// event-queue implementation produced it.
pub const CALENDAR: &str = "timer-wheel/4096x8192ns";

/// log2 of the slice width: each wheel slot covers `1 << SLICE_SHIFT` ns.
/// 8192 ns ≈ 2.9 OC-3 cell times — measured fastest across the repro
/// sweep (4096 ns pays more cursor advances, 16384 ns more same-slice
/// sorted inserts).
pub const SLICE_SHIFT: u32 = 13;

/// Nanoseconds per wheel slice.
pub const SLICE_NS: u64 = 1 << SLICE_SHIFT;

/// Number of ring buckets. With 8192-ns slices this gives a ~33.6 ms
/// near-future horizon — comfortably past every cell time, measurement
/// interval and propagation delay in the paper's topologies.
pub const WHEEL_SLOTS: usize = 4096;

const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// One scheduled delivery of a message `M` to a node.
pub struct Event<M> {
    /// When the message is delivered.
    pub time: SimTime,
    /// Tie-breaker: insertion order among equal timestamps.
    pub seq: u64,
    /// Destination node.
    pub dst: NodeId,
    /// The payload.
    pub msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Among equal times, the lowest sequence number wins (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Key for the far-future overflow heap: the ordering pair plus the
/// index of the payload slot in the far slab.
///
/// `slot` takes no part in the ordering — `seq` is unique, so `(time, seq)`
/// is already a total order.
#[derive(Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed, same convention as `Event`.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A far-slab payload slot: either holds a pending far-future message or
/// links into the intrusive free list (so releasing a slot is one write,
/// with no separate free-index vector to maintain).
enum Slot<M> {
    Full(NodeId, M),
    Free(u32),
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// One pending near-future event, held inline: the ordering pair, the
/// destination and the payload itself. Buckets and the active run move
/// whole entries — a wider memcpy than a 24-byte key, but always a
/// contiguous one, never a pointer chase into a cold slab.
struct Entry<M> {
    time: SimTime,
    seq: u64,
    dst: NodeId,
    msg: M,
}

/// Priority queue of pending events, earliest first.
///
/// Invariant: every entry with slice `<= cursor` lives in `active`, sorted
/// ascending by `(time, seq)`; entries with
/// `cursor < slice < cursor + WHEEL_SLOTS` live in `wheel[slice % WHEEL_SLOTS]`
/// (with the matching `occupied` bit set); everything further out lives in
/// `overflow` + `far_slots`. Because a slice's times are strictly below the
/// next slice's, the front of `active` — when non-empty — is the global
/// minimum.
pub struct EventQueue<M> {
    /// Events in the current or earlier slices, ascending by `(time, seq)`:
    /// the next event to pop is at the front. Small — it holds at most a
    /// couple of slices' worth of entries — so the occasional mid-slice
    /// insert shifts only a handful of elements, and the common same-slice
    /// send (later than everything active) is a plain `push_back`.
    active: VecDeque<Entry<M>>,
    /// Ring buckets for the near-future window, unsorted within a bucket,
    /// payloads inline.
    wheel: Vec<Vec<Entry<M>>>,
    /// One bit per wheel slot: does the bucket hold any entries?
    occupied: [u64; BITMAP_WORDS],
    /// Keys of far-future events, beyond the wheel horizon.
    overflow: BinaryHeap<HeapKey>,
    /// Payload slab for `overflow` keys only.
    far_slots: Vec<Slot<M>>,
    /// Head of the far-slab free list.
    far_free: u32,
    /// Absolute slice number (`time >> SLICE_SHIFT`) the wheel is parked at.
    cursor: u64,
    /// Total pending events across active + wheel + overflow.
    len: usize,
    next_seq: u64,
    /// Profiling counters/timers, boxed out of the hot struct; `None`
    /// (the default) costs one predictable branch per push and none on
    /// the pop fast path.
    prof: Option<Box<CalendarStats>>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            active: VecDeque::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            far_slots: Vec::new(),
            far_free: NIL,
            cursor: 0,
            len: 0,
            next_seq: 0,
            prof: None,
        }
    }

    /// Enable or disable profiling counters. While enabled, pushes are
    /// classified by destination (active run / wheel bucket / far slab +
    /// overflow heap) and the cold [`advance`](Self::advance) path times
    /// its scan, promote and sort phases.
    pub(crate) fn set_profiling(&mut self, on: bool) {
        if on {
            if self.prof.is_none() {
                self.prof = Some(Box::default());
            }
        } else {
            self.prof = None;
        }
    }

    /// Take (and reset) the accumulated profiling stats, leaving
    /// profiling enabled if it was.
    pub(crate) fn take_profile(&mut self) -> CalendarStats {
        match self.prof.as_deref_mut() {
            Some(p) => std::mem::take(p),
            None => CalendarStats::default(),
        }
    }

    /// Schedule delivery of `msg` to `dst` at absolute time `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, dst: NodeId, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let slice = time.0 >> SLICE_SHIFT;
        if let Some(p) = self.prof.as_deref_mut() {
            if slice <= self.cursor {
                p.active_inserts += 1;
            } else if slice - self.cursor < WHEEL_SLOTS as u64 {
                p.wheel_pushes += 1;
            } else {
                p.far_pushes += 1;
            }
        }
        if slice <= self.cursor {
            // Current slice (or a past-time push): keep the active run
            // sorted. The new entry has the highest seq so far, so among
            // equal times it belongs after every existing entry.
            let at = self.active.partition_point(|e| e.time <= time);
            if at == self.active.len() {
                self.active.push_back(Entry {
                    time,
                    seq,
                    dst,
                    msg,
                });
            } else {
                self.active.insert(
                    at,
                    Entry {
                        time,
                        seq,
                        dst,
                        msg,
                    },
                );
            }
        } else if slice - self.cursor < WHEEL_SLOTS as u64 {
            let idx = (slice & SLOT_MASK) as usize;
            self.wheel[idx].push(Entry {
                time,
                seq,
                dst,
                msg,
            });
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        } else {
            let slot = self.far_alloc(dst, msg);
            self.overflow.push(HeapKey { time, seq, slot });
        }
    }

    /// Park `(dst, msg)` in the far slab, returning its slot index.
    fn far_alloc(&mut self, dst: NodeId, msg: M) -> u32 {
        if self.far_free != NIL {
            let s = self.far_free;
            match std::mem::replace(&mut self.far_slots[s as usize], Slot::Full(dst, msg)) {
                Slot::Free(next) => self.far_free = next,
                Slot::Full(..) => unreachable!("free head points at a full slot"),
            }
            s
        } else {
            assert!(
                self.far_slots.len() < NIL as usize,
                "event queue slot index overflow"
            );
            self.far_slots.push(Slot::Full(dst, msg));
            (self.far_slots.len() - 1) as u32
        }
    }

    /// Release a far slot, returning its payload.
    fn far_claim(&mut self, slot: u32) -> (NodeId, M) {
        let released = Slot::Free(self.far_free);
        match std::mem::replace(&mut self.far_slots[slot as usize], released) {
            Slot::Full(dst, msg) => {
                self.far_free = slot;
                (dst, msg)
            }
            Slot::Free(..) => unreachable!("key points at an empty slot"),
        }
    }

    /// Advance the cursor to the next occupied slice and load it into the
    /// active run. Caller guarantees `active` is empty and `len > 0`.
    #[cold]
    fn advance(&mut self) {
        // Timestamps are taken only while profiling; `advance` runs once
        // per occupied slice, so even then the clock reads are far off
        // the per-event path.
        let prof_on = self.prof.is_some();
        let t0 = prof_on.then(Instant::now);
        let from_wheel = self.next_occupied_slice();
        let from_overflow = self.overflow.peek().map(|k| k.time.0 >> SLICE_SHIFT);
        let target = match (from_wheel, from_overflow) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => unreachable!("advance called on an empty calendar"),
        };
        self.cursor = target;
        let t1 = prof_on.then(Instant::now);
        // Promote overflow entries that now fall inside the window (or on
        // the new cursor slice itself; the sort below restores their order
        // among the bucket's entries).
        let mut promoted = 0u64;
        while let Some(top) = self.overflow.peek() {
            let slice = top.time.0 >> SLICE_SHIFT;
            if slice - self.cursor >= WHEEL_SLOTS as u64 {
                break;
            }
            let key = self.overflow.pop().expect("peeked key vanished");
            let (dst, msg) = self.far_claim(key.slot);
            promoted += 1;
            let entry = Entry {
                time: key.time,
                seq: key.seq,
                dst,
                msg,
            };
            if slice == self.cursor {
                self.active.push_back(entry);
            } else {
                let idx = (slice & SLOT_MASK) as usize;
                self.wheel[idx].push(entry);
                self.occupied[idx >> 6] |= 1u64 << (idx & 63);
            }
        }
        let t2 = prof_on.then(Instant::now);
        // Drain the cursor's bucket and restore exact (time, seq) order
        // with one small sort — the only per-slice ordering work.
        let idx = (self.cursor & SLOT_MASK) as usize;
        if self.occupied[idx >> 6] & (1u64 << (idx & 63)) != 0 {
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
            self.active.extend(self.wheel[idx].drain(..));
        }
        self.active
            .make_contiguous()
            .sort_unstable_by_key(|e| (e.time, e.seq));
        debug_assert!(!self.active.is_empty(), "advance loaded nothing");
        if let Some(p) = self.prof.as_deref_mut() {
            let t3 = Instant::now();
            let ns = |a: Instant, b: Instant| b.duration_since(a).as_nanos() as u64;
            let (t0, t1, t2) = (t0.unwrap(), t1.unwrap(), t2.unwrap());
            p.advances += 1;
            p.promoted += promoted;
            p.sorted_entries += self.active.len() as u64;
            p.scan_ns += ns(t0, t1);
            p.promote_ns += ns(t1, t2);
            p.sort_ns += ns(t2, t3);
            p.advance_ns += ns(t0, t3);
            let occ: u64 = self
                .occupied
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum();
            p.occupied_slices_sum += occ;
            p.occupied_slices_max = p.occupied_slices_max.max(occ);
        }
    }

    /// Absolute slice number of the first occupied wheel bucket strictly
    /// after the cursor, if any.
    fn next_occupied_slice(&self) -> Option<u64> {
        let start = ((self.cursor + 1) & SLOT_MASK) as usize;
        // First (partial) word: only bits at or after `start`.
        let mut word = self.occupied[start >> 6] & (!0u64 << (start & 63));
        let mut widx = start >> 6;
        for _ in 0..=BITMAP_WORDS {
            if word != 0 {
                let idx = ((widx << 6) + word.trailing_zeros() as usize) as u64;
                // Map the ring index back to the unique absolute slice in
                // (cursor, cursor + WHEEL_SLOTS).
                let delta = (idx.wrapping_sub(self.cursor + 1)) & SLOT_MASK;
                return Some(self.cursor + 1 + delta);
            }
            widx = (widx + 1) % BITMAP_WORDS;
            word = self.occupied[widx];
        }
        None
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Event<M>> {
        if self.active.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let e = self.active.pop_front().expect("advance left active empty");
        self.len -= 1;
        Some(Event {
            time: e.time,
            seq: e.seq,
            dst: e.dst,
            msg: e.msg,
        })
    }

    /// Remove and return the earliest event if its timestamp is `<= t`.
    ///
    /// This is the engine's `run_until` hot path: one call decides both
    /// "is there work" and "is it due", instead of a peek followed by a
    /// pop. (A failed call may still advance the wheel cursor to the next
    /// occupied slice — harmless, since routing is relative to the cursor.)
    #[inline]
    pub fn pop_at_or_before(&mut self, t: SimTime) -> Option<Event<M>> {
        if self.active.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        if self.active.front().expect("advance left active empty").time > t {
            return None;
        }
        let e = self.active.pop_front().expect("peeked entry vanished");
        self.len -= 1;
        Some(Event {
            time: e.time,
            seq: e.seq,
            dst: e.dst,
            msg: e.msg,
        })
    }

    /// Timestamp of the earliest pending event.
    ///
    /// Cheap when the active run is warm; otherwise scans the occupancy
    /// bitmap and the first non-empty bucket (buckets are unsorted, but
    /// every time in the earliest occupied slice precedes every time in any
    /// later slice, so one bucket scan suffices).
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.active.front() {
            return Some(e.time);
        }
        if let Some(slice) = self.next_occupied_slice() {
            let bucket = &self.wheel[(slice & SLOT_MASK) as usize];
            let min = bucket.iter().map(|e| e.time).min();
            debug_assert!(min.is_some(), "occupied bit set on an empty bucket");
            return min;
        }
        self.overflow.peek().map(|k| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The next insertion sequence number — part of the `(time, seq)`
    /// ordering state a checkpoint must capture: a restored calendar
    /// that re-used lower sequence numbers would tie-break future
    /// same-timestamp sends differently from the uninterrupted run.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Overwrite the insertion sequence counter (checkpoint restore
    /// only, after re-inserting the pending set via
    /// [`EventQueue::restore_push`]).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// Visit every pending event — active run, wheel buckets, and
    /// far-future slab occupants keyed by the overflow heap — in
    /// arbitrary order, without disturbing the queue. Callers that need
    /// delivery order sort by `(time, seq)`, which is the exact total
    /// order [`EventQueue::pop`] delivers.
    pub fn for_each_pending(&self, mut f: impl FnMut(SimTime, u64, NodeId, &M)) {
        for e in &self.active {
            f(e.time, e.seq, e.dst, &e.msg);
        }
        for bucket in &self.wheel {
            for e in bucket {
                f(e.time, e.seq, e.dst, &e.msg);
            }
        }
        for key in self.overflow.iter() {
            match &self.far_slots[key.slot as usize] {
                Slot::Full(dst, msg) => f(key.time, key.seq, *dst, msg),
                Slot::Free(..) => unreachable!("overflow key points at an empty slot"),
            }
        }
    }

    /// Re-insert one event under its *original* sequence number
    /// (checkpoint restore). Unlike [`EventQueue::push`] this neither
    /// assigns nor advances `next_seq`; the caller re-inserts the whole
    /// pending set (any order), then calls [`EventQueue::set_next_seq`]
    /// with the checkpointed counter. Internal placement (bucket vs
    /// overflow) may differ from the original queue — delivery order is
    /// governed solely by `(time, seq)`, so pops are identical.
    pub fn restore_push(&mut self, time: SimTime, seq: u64, dst: NodeId, msg: M) {
        self.len += 1;
        let slice = time.0 >> SLICE_SHIFT;
        if slice <= self.cursor {
            let at = self
                .active
                .partition_point(|e| (e.time, e.seq) <= (time, seq));
            self.active.insert(
                at,
                Entry {
                    time,
                    seq,
                    dst,
                    msg,
                },
            );
        } else if slice - self.cursor < WHEEL_SLOTS as u64 {
            let idx = (slice & SLOT_MASK) as usize;
            self.wheel[idx].push(Entry {
                time,
                seq,
                dst,
                msg,
            });
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        } else {
            let slot = self.far_alloc(dst, msg);
            self.overflow.push(HeapKey { time, seq, slot });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), NodeId(0), "c");
        q.push(SimTime::from_micros(10), NodeId(0), "a");
        q.push(SimTime::from_micros(20), NodeId(0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, NodeId(0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), NodeId(0), 1);
        q.push(SimTime::from_micros(30), NodeId(0), 3);
        assert_eq!(q.pop().unwrap().msg, 1);
        q.push(SimTime::from_micros(20), NodeId(0), 2);
        assert_eq!(q.pop().unwrap().msg, 2);
        assert_eq!(q.pop().unwrap().msg, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(42), NodeId(1), ());
        q.push(SimTime::from_micros(7), NodeId(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_time_sees_past_the_wheel_horizon() {
        let mut q = EventQueue::new();
        let far = SimTime(SLICE_NS * (WHEEL_SLOTS as u64) * 3);
        q.push(far, NodeId(0), "overflow");
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop().unwrap().msg, "overflow");
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), NodeId(0), 1);
        q.push(SimTime::from_micros(20), NodeId(0), 2);
        assert!(q.pop_at_or_before(SimTime::from_micros(5)).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::from_micros(10)).unwrap().msg, 1);
        assert!(q.pop_at_or_before(SimTime::from_micros(19)).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::from_micros(25)).unwrap().msg, 2);
        assert!(q.pop_at_or_before(SimTime::MAX).is_none());
    }

    #[test]
    fn same_slice_inserts_keep_sorted_order() {
        let mut q = EventQueue::new();
        // All inside slice 0, pushed out of time order: the active run's
        // binary-search insert must keep them sorted.
        q.push(SimTime(900), NodeId(0), 9);
        q.push(SimTime(100), NodeId(0), 1);
        q.push(SimTime(500), NodeId(0), 5);
        assert_eq!(q.pop().unwrap().msg, 1);
        // Mid-drain insert between the remaining entries.
        q.push(SimTime(300), NodeId(0), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, vec![3, 5, 9]);
    }

    #[test]
    fn far_slots_are_recycled() {
        let mut q = EventQueue::new();
        let horizon = SLICE_NS * WHEEL_SLOTS as u64;
        for round in 0..4u64 {
            // Each round parks 8 events past the horizon, then drains.
            for i in 0..8u64 {
                q.push(SimTime((round + 2) * horizon + i), NodeId(0), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // Every round drains fully, so the far slab never needs more than
        // one round's worth of slots (near events never touch it at all).
        assert!(
            q.far_slots.len() <= 8,
            "far slab grew to {}",
            q.far_slots.len()
        );
        assert!(q.is_empty());
    }

    #[test]
    fn far_slab_capacity_stays_bounded_under_sliding_window() {
        // Steady-state far-future traffic: a fixed-size window of
        // pending beyond-horizon events slides forward for hundreds of
        // horizons. The slab must reuse freed slots (via the intrusive
        // free list and promotion-time `far_claim`) rather than growing
        // with the *total* number of far events ever parked — the
        // regression this guards against is an alloc-per-push slab,
        // which at metro scale (10^5 pacing timers crossing the horizon
        // continuously) would leak the slab without bound.
        let mut q = EventQueue::new();
        let horizon = SLICE_NS * WHEEL_SLOTS as u64;
        const WINDOW: u64 = 16;
        let gap = horizon / 8; // window spans 2 horizons: always far
        let t = |i: u64| SimTime(2 * horizon + i * gap);
        for i in 0..WINDOW {
            q.push(t(i), NodeId(0), i);
        }
        for i in WINDOW..1000 {
            q.push(t(i), NodeId(0), i);
            assert_eq!(q.pop().unwrap().msg, i - WINDOW);
        }
        assert!(
            q.far_slots.len() <= 2 * WINDOW as usize,
            "far slab grew to {} slots for a {}-event window",
            q.far_slots.len(),
            WINDOW
        );
        let tail: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(tail, (1000 - WINDOW..1000).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_events_promote_in_order() {
        let mut q = EventQueue::new();
        let horizon = SLICE_NS * WHEEL_SLOTS as u64;
        // Far-future burst at the same timestamp: FIFO must survive the
        // overflow → wheel → active promotions.
        let t = SimTime(horizon * 2 + 5);
        for i in 0..10 {
            q.push(t, NodeId(0), i);
        }
        // Plus near-future and mid-future company.
        q.push(SimTime(100), NodeId(0), 100);
        q.push(SimTime(horizon - 1), NodeId(0), 101);
        assert_eq!(q.pop().unwrap().msg, 100);
        assert_eq!(q.pop().unwrap().msg, 101);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_wraps_across_many_horizons() {
        let mut q = EventQueue::new();
        let horizon = SLICE_NS * WHEEL_SLOTS as u64;
        let mut expect = Vec::new();
        for i in 0..64u64 {
            // Spread pushes over ~8 horizons, descending insert order.
            let t = SimTime((63 - i) * horizon / 8 + (63 - i) * 17);
            q.push(t, NodeId(0), 63 - i);
            expect.push(63 - i);
        }
        expect.sort_unstable();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.msg).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn pending_snapshot_restores_to_the_identical_pop_sequence() {
        // Populate every storage tier: active run (pop once to warm it),
        // wheel buckets, and far slab + overflow heap; include
        // same-timestamp runs whose FIFO order rides on `seq`.
        let horizon = SLICE_NS * WHEEL_SLOTS as u64;
        let mut q = EventQueue::new();
        q.push(SimTime(100), NodeId(0), 0u32);
        q.push(SimTime(150), NodeId(1), 1);
        for i in 0..5 {
            q.push(SimTime(40_000), NodeId(2), 10 + i); // same-time burst
        }
        q.push(SimTime(horizon * 3 + 7), NodeId(3), 30); // far slab
        q.push(SimTime(horizon * 2 + 7), NodeId(3), 31); // far slab
        q.push(SimTime(9_000), NodeId(4), 40);
        assert_eq!(q.pop().unwrap().msg, 0, "warm the active run");

        let mut pending: Vec<(SimTime, u64, NodeId, u32)> = Vec::new();
        q.for_each_pending(|t, s, d, m| pending.push((t, s, d, *m)));
        assert_eq!(pending.len(), q.len());
        pending.sort_by_key(|(t, s, ..)| (*t, *s));

        let mut restored = EventQueue::new();
        for (t, s, d, m) in &pending {
            restored.restore_push(*t, *s, *d, *m);
        }
        restored.set_next_seq(q.next_seq());
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.next_seq(), q.next_seq());

        // Interleave fresh pushes mid-drain: the restored queue must
        // assign them the same seqs and deliver identically.
        let drain = |q: &mut EventQueue<u32>| {
            let mut out = Vec::new();
            let mut pushed = false;
            while let Some(e) = q.pop() {
                out.push((e.time, e.seq, e.dst, e.msg));
                if !pushed && e.msg == 12 {
                    q.push(SimTime(40_000), NodeId(9), 99); // same-time late arrival
                    pushed = true;
                }
            }
            out
        };
        assert_eq!(drain(&mut restored), drain(&mut q));
    }

    /// The binary-heap calendar the wheel replaced, kept as the ordering
    /// oracle for the property test below.
    struct OracleQueue<M> {
        heap: BinaryHeap<HeapKey>,
        slots: Vec<Slot<M>>,
        free_head: u32,
        next_seq: u64,
    }

    impl<M> OracleQueue<M> {
        fn new() -> Self {
            OracleQueue {
                heap: BinaryHeap::new(),
                slots: Vec::new(),
                free_head: NIL,
                next_seq: 0,
            }
        }

        fn push(&mut self, time: SimTime, dst: NodeId, msg: M) {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = if self.free_head != NIL {
                let s = self.free_head;
                match std::mem::replace(&mut self.slots[s as usize], Slot::Full(dst, msg)) {
                    Slot::Free(next) => self.free_head = next,
                    Slot::Full(..) => unreachable!(),
                }
                s
            } else {
                self.slots.push(Slot::Full(dst, msg));
                (self.slots.len() - 1) as u32
            };
            self.heap.push(HeapKey { time, seq, slot });
        }

        fn pop(&mut self) -> Option<Event<M>> {
            let key = self.heap.pop()?;
            let released = Slot::Free(self.free_head);
            match std::mem::replace(&mut self.slots[key.slot as usize], released) {
                Slot::Full(dst, msg) => {
                    self.free_head = key.slot;
                    Some(Event {
                        time: key.time,
                        seq: key.seq,
                        dst,
                        msg,
                    })
                }
                Slot::Free(..) => unreachable!(),
            }
        }

        fn pop_at_or_before(&mut self, t: SimTime) -> Option<Event<M>> {
            if self.heap.peek()?.time > t {
                return None;
            }
            self.pop()
        }

        fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|k| k.time)
        }
    }

    mod oracle_props {
        use super::*;
        use proptest::prelude::*;
        use proptest::TestCaseError;

        /// One step of the interleaved push/pop script driven by proptest.
        #[derive(Clone, Debug)]
        enum Op {
            /// Push at `base + offset` where `base` is the time of the last
            /// popped event (keeps pushes roaming forward, like a run).
            Push { offset: u64 },
            /// Push a burst of `n` events all at the same timestamp.
            Burst { offset: u64, n: u8 },
            /// Pop one event.
            Pop,
            /// Pop with a deadline `deadline_off` past the last popped time.
            PopBefore { deadline_off: u64 },
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                // Offsets cover: same-slice, adjacent-slice, deep in the
                // wheel window, and past the horizon (overflow + promotion;
                // the horizon is ~33.6 ms = 33_554_432 ns).
                (0u64..200_000_000u64).prop_map(|offset| Op::Push { offset }),
                ((0u64..50_000u64), (2u8..20u8)).prop_map(|(offset, n)| Op::Burst { offset, n }),
                Just(Op::Pop),
                (0u64..100_000u64).prop_map(|deadline_off| Op::PopBefore { deadline_off }),
            ]
        }

        /// The wheel/overflow boundary in nanoseconds: an event pushed at
        /// `cursor_time + HORIZON_NS` is the first to miss the ring.
        const HORIZON_NS: u64 = SLICE_NS * WHEEL_SLOTS as u64;

        /// Offsets biased hard onto that boundary: the exact edge ±1 ns,
        /// the last wheel slot, the first overflow slice, and within-slice
        /// jitter on either side.
        fn boundary_offset() -> impl Strategy<Value = u64> {
            prop_oneof![
                Just(HORIZON_NS - 1),
                Just(HORIZON_NS),
                Just(HORIZON_NS + 1),
                Just(HORIZON_NS - SLICE_NS),
                Just(HORIZON_NS + SLICE_NS),
                (HORIZON_NS - 2 * SLICE_NS)..(HORIZON_NS + 2 * SLICE_NS),
                (0u64..SLICE_NS).prop_map(|j| HORIZON_NS - SLICE_NS + j),
                (0u64..SLICE_NS).prop_map(|j| HORIZON_NS + j),
            ]
        }

        fn boundary_op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                boundary_offset().prop_map(|offset| Op::Push { offset }),
                (boundary_offset(), 2u8..8u8).prop_map(|(offset, n)| Op::Burst { offset, n }),
                Just(Op::Pop),
                // Near deadlines advance the cursor up to (and just past)
                // earlier boundary pushes, forcing overflow promotion.
                (0u64..100_000u64).prop_map(|deadline_off| Op::PopBefore { deadline_off }),
                boundary_offset().prop_map(|deadline_off| Op::PopBefore { deadline_off }),
            ]
        }

        /// Replay `ops` against both queues, checking every pop, peek and
        /// length along the way, then drain and compare the remainder.
        fn check_against_oracle(ops: &[Op]) -> Result<(), TestCaseError> {
            let mut wheel = EventQueue::new();
            let mut oracle = OracleQueue::new();
            let mut base = 0u64;
            let mut payload = 0u32;
            for op in ops {
                match *op {
                    Op::Push { offset } => {
                        let t = SimTime(base + offset);
                        wheel.push(t, NodeId(0), payload);
                        oracle.push(t, NodeId(0), payload);
                        payload += 1;
                    }
                    Op::Burst { offset, n } => {
                        let t = SimTime(base + offset);
                        for _ in 0..n {
                            wheel.push(t, NodeId(0), payload);
                            oracle.push(t, NodeId(0), payload);
                            payload += 1;
                        }
                    }
                    Op::Pop => {
                        let a = wheel.pop();
                        let b = oracle.pop();
                        prop_assert_eq!(a.is_some(), b.is_some());
                        if let (Some(x), Some(y)) = (a, b) {
                            prop_assert_eq!(x.time, y.time);
                            prop_assert_eq!(x.seq, y.seq);
                            prop_assert_eq!(x.msg, y.msg);
                            base = x.time.0;
                        }
                    }
                    Op::PopBefore { deadline_off } => {
                        let t = SimTime(base + deadline_off);
                        let a = wheel.pop_at_or_before(t);
                        let b = oracle.pop_at_or_before(t);
                        prop_assert_eq!(a.is_some(), b.is_some());
                        if let (Some(x), Some(y)) = (a, b) {
                            prop_assert_eq!(x.time, y.time);
                            prop_assert_eq!(x.seq, y.seq);
                            prop_assert_eq!(x.msg, y.msg);
                            base = x.time.0;
                        }
                    }
                }
                prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
                prop_assert_eq!(wheel.len(), oracle.heap.len());
            }
            // Drain: the full remaining sequence must match too.
            loop {
                let a = wheel.pop();
                let b = oracle.pop();
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(x.time, y.time);
                        prop_assert_eq!(x.seq, y.seq);
                        prop_assert_eq!(x.msg, y.msg);
                    }
                    (a, b) => prop_assert!(
                        false,
                        "wheel {:?} vs oracle {:?}",
                        a.map(|e| e.time),
                        b.map(|e| e.time)
                    ),
                }
            }
            Ok(())
        }

        proptest! {
            /// The wheel delivers the exact sequence the binary heap
            /// delivers: same times, same seqs, same payloads, same
            /// `None`s — under arbitrary interleavings of pushes (near,
            /// far and same-timestamp bursts) and both pop flavours.
            #[test]
            fn wheel_matches_heap_oracle(
                ops in proptest::collection::vec(op_strategy(), 1..120)
            ) {
                check_against_oracle(&ops)?;
            }

            /// The same oracle equivalence with every push and deadline
            /// pinned to the wheel/overflow horizon: events landing on the
            /// last ring slot vs the first overflow slice, exact-edge ±1 ns
            /// timestamps, and cursor advances that promote overflow events
            /// back into the ring.
            #[test]
            fn wheel_matches_heap_oracle_at_the_horizon(
                ops in proptest::collection::vec(boundary_op_strategy(), 1..120)
            ) {
                check_against_oracle(&ops)?;
            }
        }
    }
}
