//! Conservative intra-run parallelism: topology sharding and lookahead.
//!
//! One simulation is partitioned into `k` *shards* — disjoint groups of
//! nodes, each with its own timer-wheel calendar, advanced in lockstep
//! *epochs* of width `lookahead` (the minimum declared link propagation
//! delay). Within an epoch a shard dispatches only its own nodes' events;
//! a cross-shard `Ctx::send` lands in a staging queue that is merged into
//! the destination shard's calendar at the epoch barrier, in the
//! deterministic total order of its `(time, key)` pair. Because every
//! inter-node message in a built topology crosses a declared link whose
//! propagation delay is at least the lookahead, no cross-shard message
//! can ever arrive inside the epoch that produced it — the classic
//! conservative-PDES argument — and the merged event sequence is a pure
//! function of `(topology, seed)`, independent of the shard count.
//!
//! ## The deterministic ordering key
//!
//! The serial engine tie-breaks equal-time events by a global insertion
//! counter, which has no meaning when several shards insert concurrently.
//! Sharded runs instead mint, per send, the 64-bit key
//!
//! ```text
//! key = (sender + 1) << 40 | per_sender_counter
//! ```
//!
//! which is unique (the counter is per node and monotonic), reproducible
//! (it depends only on the sender's own dispatch history, which is
//! shard-invariant), and totally ordered. Events scheduled *before* the
//! run — topology kicks, timeline admin messages — keep their original
//! build seqs, all below `1 << 40`, so they still sort ahead of every
//! in-run send at an equal timestamp. The per-sender counters live in
//! the engine and persist across `run_until` slices, so a heartbeat-
//! sliced run mints the same keys as a single-call run.
//!
//! This tie-break differs from the serial engine's insertion order, so a
//! sharded run (any `k`, including `k = 1`) is a *different* — equally
//! valid and equally deterministic — interleaving than a serial run of
//! the same scenario. The contract is invariance across shard counts:
//! `--shards 1`, `--shards 2` and `--shards 4` produce byte-identical
//! traces, analysis reports and telemetry.
//!
//! ## Partitioning
//!
//! [`ShardHints`] — attached by the topology builders at build time —
//! carry the lookahead and *affinity* edges (each session endpoint is
//! anchored to its first switch/router). [`partition`] unions the
//! affinity edges into clusters and greedily bin-packs clusters (largest
//! first) onto the `k` shards. The cut is a balance/locality heuristic
//! only: correctness needs nothing from it, because every inter-node
//! delay is at least the lookahead no matter where the cut falls.

use crate::probe::{Probe, ProbeEvent};
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Barrier, Mutex};

/// Bit position splitting an ordering key into `(sender + 1) | counter`.
pub(crate) const KEY_SHIFT: u32 = 40;

/// Maximum node count addressable by the key scheme (`sender + 1` must
/// fit in the high 24 bits).
pub(crate) const MAX_NODES: usize = (1 << (64 - KEY_SHIFT)) - 1;

thread_local! {
    /// Requested shard count for engines run on this thread; 0 = serial.
    static SHARDS: Cell<usize> = const { Cell::new(0) };
}

/// Request that engines run on this thread use `n` intra-run shards
/// (0 restores the serial engine). Returns the previous value, for
/// save/restore bracketing; harnesses that may panic should prefer
/// [`ShardGuard`]. An engine without [`crate::Engine::set_shard_hints`]
/// hints (or with a zero lookahead) ignores the request and runs
/// serially.
pub fn set_shards(n: usize) -> usize {
    SHARDS.with(|c| c.replace(n))
}

/// The shard count currently requested on this thread (0 = serial).
pub fn shards() -> usize {
    SHARDS.with(|c| c.get())
}

/// RAII bracket around [`set_shards`]: restores the previous request on
/// drop, including during unwinding.
pub struct ShardGuard {
    prev: usize,
}

impl ShardGuard {
    /// Request `n` shards until the guard drops.
    pub fn new(n: usize) -> Self {
        ShardGuard {
            prev: set_shards(n),
        }
    }
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        set_shards(self.prev);
    }
}

/// Partitioning hints a topology builder attaches to the engine.
#[derive(Clone, Debug, Default)]
pub struct ShardHints {
    /// Conservative lookahead: the minimum declared link propagation
    /// delay across the whole topology (trunks *and* access links).
    /// Every inter-node message is delayed by at least this much, so it
    /// bounds the epoch width. Zero disables sharding.
    pub lookahead: SimDuration,
    /// Affinity edges `(node, anchor)`: keep `node` on `anchor`'s shard.
    /// Builders anchor each session endpoint to its first switch/router
    /// so the busiest links stay shard-local. Purely a balance/locality
    /// heuristic — any partition is causally sound.
    pub affinity: Vec<(NodeId, NodeId)>,
}

/// Assign each of `n` nodes to one of `k` shards, honouring the affinity
/// clusters in `hints`. Deterministic: depends only on `(n, hints, k)`.
///
/// Clusters (connected components of the affinity edges) are placed
/// whole, largest first (ties by lowest member id), each onto the
/// currently lightest shard (ties by lowest shard index). Shards may end
/// up empty when `k` exceeds the cluster count; empty shards idle at the
/// barriers and cost nothing else.
pub(crate) fn partition(n: usize, hints: &ShardHints, k: usize) -> Vec<u32> {
    assert!(k >= 1, "shard count must be at least 1");
    assert!(
        n < MAX_NODES,
        "sharded runs support at most {MAX_NODES} nodes ({n} registered)"
    );
    // Union-find over affinity edges.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }
    for &(a, b) in &hints.affinity {
        if a.0 >= n || b.0 >= n {
            continue;
        }
        let (ra, rb) = (find(&mut parent, a.0 as u32), find(&mut parent, b.0 as u32));
        if ra != rb {
            // Anchor to the lower root so cluster ids are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
        }
    }
    // Gather clusters: root → (size, min member). Roots are the minimum
    // member of their cluster by construction above.
    let mut size = vec![0u32; n];
    for i in 0..n as u32 {
        let r = find(&mut parent, i);
        size[r as usize] += 1;
    }
    let mut clusters: Vec<(u32, u32)> = (0..n as u32)
        .filter(|&i| parent[i as usize] == i)
        .map(|r| (size[r as usize], r))
        .collect();
    // Largest first; equal sizes by lowest root id.
    clusters.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut load = vec![0u64; k];
    let mut shard_of_root = vec![0u32; n];
    for (sz, root) in clusters {
        let s = (0..k).min_by_key(|&s| (load[s], s)).expect("k >= 1");
        load[s] += sz as u64;
        shard_of_root[root as usize] = s as u32;
    }
    (0..n as u32)
        .map(|i| shard_of_root[find(&mut parent, i) as usize])
        .collect()
}

/// A cross-shard send parked until the next epoch barrier.
pub(crate) struct Staged<M> {
    pub time: SimTime,
    pub key: u64,
    pub dst: NodeId,
    pub msg: M,
}

/// One probe emission recorded by a shard worker, tagged with the
/// `(time, key, idx)` of the dispatch that produced it so the epoch
/// merge can replay emissions to the real probe in the deterministic
/// global dispatch order.
pub(crate) struct ProbeRec {
    /// Delivery time of the dispatched event.
    pub at: SimTime,
    /// Ordering key of the dispatched event.
    pub key: u64,
    /// Emission index within that dispatch.
    pub idx: u32,
    /// Timestamp the emitter passed to the probe tap.
    pub t: SimTime,
    /// Emitting node.
    pub node: NodeId,
    /// The semantic event.
    pub ev: ProbeEvent,
}

/// Thread-probe shim installed on each shard worker: buffers emissions as
/// [`ProbeRec`]s tagged with the `(time, key)` of the in-flight dispatch
/// (published by the worker through the shared `cur` cell) plus a
/// per-dispatch emission index, instead of writing to a real sink. The
/// coordinator replays merged buffers into the real probe on the driving
/// thread, sorted by `(at, key, idx)`.
pub(crate) struct BufferProbe {
    cur: Rc<Cell<(u64, u64)>>,
    out: Rc<RefCell<Vec<ProbeRec>>>,
    /// Key of the dispatch the last emission belonged to. Initialised to
    /// `u64::MAX` (not a valid key: build seqs start at 0 and minted keys
    /// have a non-zero high part) so the first dispatch resets `idx`.
    last: u64,
    idx: u32,
}

impl BufferProbe {
    pub(crate) fn new(cur: Rc<Cell<(u64, u64)>>, out: Rc<RefCell<Vec<ProbeRec>>>) -> Self {
        BufferProbe {
            cur,
            out,
            last: u64::MAX,
            idx: 0,
        }
    }
}

impl Probe for BufferProbe {
    fn on_event(&mut self, t: SimTime, node: NodeId, ev: &ProbeEvent) {
        let (at, key) = self.cur.get();
        if key != self.last {
            self.last = key;
            self.idx = 0;
        }
        self.out.borrow_mut().push(ProbeRec {
            at: SimTime(at),
            key,
            idx: self.idx,
            t,
            node,
            ev: *ev,
        });
        self.idx += 1;
    }
}

/// Epoch-synchronisation state shared by the shard workers of one run.
///
/// Three barrier waves per epoch:
///  A — every worker has finished its window and published its staged
///      cross-shard sends and probe buffer;
///  B — every worker has drained its inbox and published its minimum
///      pending time;
///  C — the coordinator (worker 0, on the run's driving thread) has
///      merged probe buffers into the real probe and published the next
///      window (or `done`).
pub(crate) struct EpochShared<M> {
    /// Next window start, ns.
    pub start: AtomicU64,
    /// Next window end (exclusive), ns.
    pub end: AtomicU64,
    /// Set by the coordinator when no pending event remains at or
    /// before the horizon.
    pub done: AtomicBool,
    /// Per-shard minimum pending time after the inbox drain
    /// (`u64::MAX` when idle).
    pub mins: Vec<AtomicU64>,
    /// `inbox[to][from]`: staged sends published at barrier A, drained
    /// by shard `to` before barrier B. Insertion order is irrelevant —
    /// the ordering keys define delivery order.
    pub inbox: Vec<Vec<Mutex<Vec<Staged<M>>>>>,
    /// Per-shard probe emissions for the current epoch.
    pub probes: Vec<Mutex<Vec<ProbeRec>>>,
    /// The epoch barrier (all workers, coordinator included).
    pub barrier: Barrier,
}

impl<M> EpochShared<M> {
    pub(crate) fn new(k: usize, start: SimTime, end: SimTime) -> Self {
        EpochShared {
            start: AtomicU64::new(start.0),
            end: AtomicU64::new(end.0),
            done: AtomicBool::new(false),
            mins: (0..k).map(|_| AtomicU64::new(u64::MAX)).collect(),
            inbox: (0..k)
                .map(|_| (0..k).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            probes: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Barrier::new(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_shards_is_thread_local_and_restores() {
        assert_eq!(shards(), 0);
        let prev = set_shards(4);
        assert_eq!(prev, 0);
        assert_eq!(shards(), 4);
        {
            let _g = ShardGuard::new(2);
            assert_eq!(shards(), 2);
        }
        assert_eq!(shards(), 4);
        set_shards(prev);
        assert_eq!(shards(), 0);
        let other = std::thread::spawn(shards).join().unwrap();
        assert_eq!(other, 0, "requests do not leak across threads");
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        // 3 anchors, each with 3 attached endpoints → 3 clusters of 4.
        let mut hints = ShardHints {
            lookahead: SimDuration::from_micros(10),
            affinity: Vec::new(),
        };
        for anchor in 0..3usize {
            for ep in 0..3usize {
                hints
                    .affinity
                    .push((NodeId(3 + anchor * 3 + ep), NodeId(anchor)));
            }
        }
        let p2 = partition(12, &hints, 2);
        assert_eq!(p2, partition(12, &hints, 2), "deterministic");
        // Clusters stay whole.
        for anchor in 0..3usize {
            for ep in 0..3usize {
                assert_eq!(p2[3 + anchor * 3 + ep], p2[anchor]);
            }
        }
        // Largest-first onto lightest shard: loads 8 / 4.
        let load0 = p2.iter().filter(|&&s| s == 0).count();
        let load1 = p2.iter().filter(|&&s| s == 1).count();
        assert_eq!((load0, load1), (8, 4));
        // More shards than clusters: some shards stay empty, all ids valid.
        let p8 = partition(12, &hints, 8);
        assert!(p8.iter().all(|&s| (s as usize) < 8));
        // Singleton nodes (no affinity) are their own clusters.
        let lone = partition(3, &ShardHints::default(), 2);
        assert_eq!(lone.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn partition_rejects_key_space_overflow() {
        partition(MAX_NODES, &ShardHints::default(), 2);
    }
}
