//! Thread-local run-wide telemetry counters.
//!
//! Harnesses (the CLI, the `repro` sweep) want a handful of aggregate
//! health numbers per run — total drops, TCP retransmissions, the deepest
//! queue seen — without threading a context through every node. Like
//! [`crate::thread_events_dispatched`], the counters live in thread
//! locals: hot paths bump them unconditionally (an increment on a rare
//! branch), and a harness brackets a run with [`begin_run`] /
//! [`RunMarker::finish`] to read the per-run delta. Parallel sweeps work
//! unchanged because each worker thread has its own counters.

use std::cell::Cell;

thread_local! {
    static DROPS: Cell<u64> = const { Cell::new(0) };
    static RETRANSMITS: Cell<u64> = const { Cell::new(0) };
    static QUEUE_PEAK: Cell<u64> = const { Cell::new(0) };
    static SCHEDULE_PAST: Cell<u64> = const { Cell::new(0) };
}

/// Record one dropped cell/packet (tail, policy or wire).
#[inline]
pub fn note_drop() {
    DROPS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Record one TCP retransmission.
#[inline]
pub fn note_retransmit() {
    RETRANSMITS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Record one past-time schedule attempt that was clamped to `now` (see
/// [`crate::Ctx::send_at`]). Debug builds assert instead; in release a
/// non-zero count flags a scenario bug without corrupting calendar order.
#[inline]
pub fn note_schedule_past() {
    SCHEDULE_PAST.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Record a queue depth; keeps the maximum since [`begin_run`]. Callers
/// should only invoke this when their own high-water mark advances, so
/// the hot path pays nothing in the common case.
#[inline]
pub fn note_queue_depth(depth: usize) {
    QUEUE_PEAK.with(|c| {
        if depth as u64 > c.get() {
            c.set(depth as u64);
        }
    });
}

/// Aggregate telemetry for one bracketed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Cells/packets dropped (tail + policy + wire).
    pub drops: u64,
    /// TCP segments retransmitted.
    pub retransmits: u64,
    /// Deepest queue observed, in items.
    pub queue_peak: u64,
    /// Past-time `send_at` calls clamped to `now` (should be 0; a
    /// non-zero value means a node computed a stale deadline).
    pub schedule_past: u64,
}

/// Marks the start of a run; see [`begin_run`].
#[derive(Debug)]
pub struct RunMarker {
    drops0: u64,
    retransmits0: u64,
    schedule_past0: u64,
}

/// Start a telemetry bracket on this thread. Drop/retransmit counts are
/// monotonic (the marker snapshots them); the queue peak is reset to 0.
pub fn begin_run() -> RunMarker {
    QUEUE_PEAK.with(|c| c.set(0));
    RunMarker {
        drops0: DROPS.with(Cell::get),
        retransmits0: RETRANSMITS.with(Cell::get),
        schedule_past0: SCHEDULE_PAST.with(Cell::get),
    }
}

/// Add a checkpoint's saved counters into the current bracket, so a
/// resumed run's [`RunMarker::finish`] reports checkpoint + suffix
/// totals — the same numbers the uninterrupted run would have printed.
/// Call *after* [`begin_run`] (the marker snapshots the monotonic
/// counters at bracket start, so additions after it land in the delta).
pub fn preload(c: &RunCounters) {
    DROPS.with(|cell| cell.set(cell.get().wrapping_add(c.drops)));
    RETRANSMITS.with(|cell| cell.set(cell.get().wrapping_add(c.retransmits)));
    SCHEDULE_PAST.with(|cell| cell.set(cell.get().wrapping_add(c.schedule_past)));
    note_queue_depth(c.queue_peak as usize);
}

impl RunMarker {
    /// Read the bracket's counters so far without closing it. A mid-run
    /// checkpoint records these, so a resumed run can [`preload`] them
    /// and report uninterrupted totals.
    pub fn so_far(&self) -> RunCounters {
        RunCounters {
            drops: DROPS.with(Cell::get).wrapping_sub(self.drops0),
            retransmits: RETRANSMITS.with(Cell::get).wrapping_sub(self.retransmits0),
            queue_peak: QUEUE_PEAK.with(Cell::get),
            schedule_past: SCHEDULE_PAST
                .with(Cell::get)
                .wrapping_sub(self.schedule_past0),
        }
    }

    /// Close the bracket and read this run's counters.
    pub fn finish(self) -> RunCounters {
        RunCounters {
            drops: DROPS.with(Cell::get).wrapping_sub(self.drops0),
            retransmits: RETRANSMITS.with(Cell::get).wrapping_sub(self.retransmits0),
            queue_peak: QUEUE_PEAK.with(Cell::get),
            schedule_past: SCHEDULE_PAST
                .with(Cell::get)
                .wrapping_sub(self.schedule_past0),
        }
    }
}

/// Resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmRSS`). Returns `None` when the file is
/// missing or unparsable (non-Linux platforms, locked-down containers)
/// — callers degrade to reporting "rss unavailable" rather than
/// failing. Shared by the heartbeat's RSS field and the `repro --scale`
/// memory probe.
pub fn rss_bytes() -> Option<u64> {
    parse_vmrss(&std::fs::read_to_string("/proc/self/status").ok()?)
}

fn parse_vmrss(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))?
        .trim()
        .strip_suffix("kB")?
        .trim();
    rest.parse::<u64>().ok().map(|kb| kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmrss_parses_the_proc_line() {
        let status = "Name:\tphantom\nVmPeak:\t  200 kB\nVmRSS:\t  1524 kB\nThreads:\t1\n";
        assert_eq!(parse_vmrss(status), Some(1524 * 1024));
        assert_eq!(parse_vmrss("Name:\tx\n"), None, "no VmRSS line");
        assert_eq!(parse_vmrss("VmRSS:\tgarbage kB\n"), None);
        assert_eq!(parse_vmrss("VmRSS:\t12\n"), None, "missing unit");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_bytes_reads_a_plausible_value() {
        let rss = rss_bytes().expect("/proc/self/status readable on Linux");
        assert!(
            rss > 64 * 1024,
            "a live process has at least 64 KiB resident"
        );
    }

    #[test]
    fn preload_adds_into_the_open_bracket() {
        let m = begin_run();
        preload(&RunCounters {
            drops: 5,
            retransmits: 2,
            queue_peak: 9,
            schedule_past: 1,
        });
        note_drop();
        note_queue_depth(4); // below the preloaded peak
        let c = m.finish();
        assert_eq!(
            c,
            RunCounters {
                drops: 6,
                retransmits: 2,
                queue_peak: 9,
                schedule_past: 1
            }
        );
    }

    #[test]
    fn brackets_isolate_runs() {
        let m1 = begin_run();
        note_drop();
        note_drop();
        note_retransmit();
        note_queue_depth(7);
        note_queue_depth(3); // not a new peak
        let c1 = m1.finish();
        assert_eq!(
            c1,
            RunCounters {
                drops: 2,
                retransmits: 1,
                queue_peak: 7,
                schedule_past: 0
            }
        );

        let m2 = begin_run();
        note_queue_depth(2);
        let c2 = m2.finish();
        assert_eq!(
            c2,
            RunCounters {
                drops: 0,
                retransmits: 0,
                queue_peak: 2,
                schedule_past: 0
            }
        );
    }
}
