//! Integer-nanosecond simulation time.
//!
//! All timestamps in the simulator are [`SimTime`] (nanoseconds since the
//! start of the run) and all intervals are [`SimDuration`]. Using integers
//! rather than `f64` guarantees that event ordering is exact and that two
//! runs with the same seed produce byte-identical traces, which the paper's
//! BONeS setup also provided.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Build a time from fractional seconds (rounded to the nearest ns).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e9).round() as u64)
    }

    /// Build a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Build a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference between two times.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds (rounded to the nearest ns).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimDuration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Build a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to serialize `bits` onto a link of `bits_per_sec`.
    ///
    /// This is the canonical "transmission delay" helper used by links and
    /// output ports; rounding is to the nearest nanosecond.
    pub fn transmission(bits: u64, bits_per_sec: f64) -> Self {
        debug_assert!(bits_per_sec > 0.0, "link rate must be positive");
        SimDuration(((bits as f64) * 1e9 / bits_per_sec).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(t - SimDuration::from_millis(15), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn transmission_delay_for_atm_cell_on_150mbps() {
        // One ATM cell is 53 bytes = 424 bits; on a 150 Mb/s link it takes
        // ~2.8267 microseconds to serialize.
        let d = SimDuration::transmission(424, 150e6);
        assert_eq!(d.as_nanos(), 2_827); // rounded to nearest ns
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(1));
    }

    #[test]
    fn fractional_multiplication_rounds() {
        let d = SimDuration::from_nanos(10) * 0.25;
        assert_eq!(d.as_nanos(), 3); // 2.5 rounds to even? No: f64 round -> 3
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
    }
}
