//! The event loop: nodes, contexts and the engine itself.
//!
//! A simulation is a set of [`Node`]s exchanging messages of a single
//! domain-specific type `M` (e.g. an ATM message enum). The [`Engine`] owns
//! the nodes and the pending-event queue; when an event fires, the
//! destination node's [`Node::on_event`] runs with a [`Ctx`] through which
//! it can schedule further messages (to itself or to other nodes) and draw
//! deterministic random numbers.
//!
//! Determinism: events are delivered in `(time, insertion order)` order,
//! each node has its own RNG stream derived from the engine seed and its
//! node index, and simulated time is integer nanoseconds. Two runs with the
//! same seed and topology produce identical traces.

use crate::event::EventQueue;
use crate::rng::derive_seed;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;

/// Identifier of a node within one [`Engine`]; dense indices starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// A simulation actor. Implementors hold all of their own state; the only
/// way state changes is through [`Node::on_event`].
pub trait Node<M>: Any {
    /// Handle a message delivered at `ctx.now()`.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// Handle given to a node while it processes an event.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    outbox: &'a mut Vec<(SimTime, NodeId, M)>,
    rng: &'a mut SmallRng,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node currently executing.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deliver `msg` to `dst` after `delay`.
    pub fn send(&mut self, dst: NodeId, delay: SimDuration, msg: M) {
        self.outbox.push((self.now + delay, dst, msg));
    }

    /// Deliver `msg` to `dst` at absolute time `at` (must not be in the past).
    pub fn send_at(&mut self, dst: NodeId, at: SimTime, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.outbox.push((at, dst, msg));
    }

    /// Deliver `msg` back to the executing node after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// This node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

/// The simulation engine: owns nodes, the event calendar and the clock.
pub struct Engine<M> {
    now: SimTime,
    queue: EventQueue<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    rngs: Vec<SmallRng>,
    seed: u64,
    outbox: Vec<(SimTime, NodeId, M)>,
    events_processed: u64,
}

impl<M: 'static> Engine<M> {
    /// A fresh engine whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            rngs: Vec::new(),
            seed,
            outbox: Vec::new(),
            events_processed: 0,
        }
    }

    /// Register a node; its id is returned and is stable for the whole run.
    pub fn add_node<N: Node<M>>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Box::new(node)));
        self.rngs
            .push(SmallRng::seed_from_u64(derive_seed(self.seed, id.0 as u64)));
        id
    }

    /// Schedule an initial message from outside any node.
    pub fn schedule(&mut self, time: SimTime, dst: NodeId, msg: M) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.push(time, dst, msg);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch the next event. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        let mut node = self.nodes[ev.dst.0]
            .take()
            .expect("node missing or re-entrant dispatch");
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                outbox: &mut self.outbox,
                rng: &mut self.rngs[ev.dst.0],
            };
            node.on_event(&mut ctx, ev.msg);
        }
        self.nodes[ev.dst.0] = Some(node);
        let mut out = std::mem::take(&mut self.outbox);
        for (t, dst, msg) in out.drain(..) {
            self.queue.push(t, dst, msg);
        }
        self.outbox = out;
        true
    }

    /// Run until the clock reaches `t` (inclusive of events at exactly `t`).
    /// The clock is left at `t` even if the calendar empties earlier.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run until the calendar is empty or `max_events` have been dispatched.
    /// Returns the number of events dispatched by this call.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.events_processed - start < max_events {
            if !self.step() {
                break;
            }
        }
        self.events_processed - start
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is of a different type — an id mix-up is a bug in
    /// the scenario, not a recoverable condition.
    pub fn node<N: Node<M>>(&self, id: NodeId) -> &N {
        let node: &dyn Node<M> = self.nodes[id.0]
            .as_deref()
            .expect("node missing (called from within dispatch?)");
        let any: &dyn Any = node;
        any.downcast_ref::<N>().expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics on a type mismatch, as with [`Engine::node`].
    pub fn node_mut<N: Node<M>>(&mut self, id: NodeId) -> &mut N {
        let node: &mut dyn Node<M> = self.nodes[id.0]
            .as_deref_mut()
            .expect("node missing (called from within dispatch?)");
        let any: &mut dyn Any = node;
        any.downcast_mut::<N>().expect("node type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[derive(Default)]
    struct Collector {
        got: Vec<(SimTime, u32)>,
    }

    impl Node<u32> for Collector {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.got.push((ctx.now(), msg));
        }
    }

    struct Relay {
        dst: NodeId,
    }

    impl Node<u32> for Relay {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            ctx.send(self.dst, SimDuration::from_micros(10), msg + 1);
        }
    }

    #[test]
    fn delivers_in_time_order_with_delays() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        let r = e.add_node(Relay { dst: c });
        e.schedule(SimTime::from_micros(5), r, 100);
        e.schedule(SimTime::from_micros(1), c, 0);
        e.run_until(SimTime::from_millis(1));
        let got = &e.node::<Collector>(c).got;
        assert_eq!(
            got,
            &vec![
                (SimTime::from_micros(1), 0),
                (SimTime::from_micros(15), 101)
            ]
        );
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = Engine::<u32>::new(1);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_is_inclusive_of_boundary_events() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        e.schedule(SimTime::from_millis(10), c, 7);
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.node::<Collector>(c).got.len(), 1);
    }

    #[test]
    fn self_messages_loop() {
        struct Ticker {
            ticks: u32,
        }
        impl Node<u32> for Ticker {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.send_self(SimDuration::from_millis(1), 0);
                }
            }
        }
        let mut e = Engine::<u32>::new(1);
        let t = e.add_node(Ticker { ticks: 0 });
        e.schedule(SimTime::ZERO, t, 0);
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.node::<Ticker>(t).ticks, 5);
        assert_eq!(e.events_processed(), 5);
    }

    #[test]
    fn rng_streams_are_deterministic_and_independent() {
        struct R {
            draws: Vec<u64>,
        }
        impl Node<u32> for R {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                let v = ctx.rng().gen::<u64>();
                self.draws.push(v);
            }
        }
        let run = |seed| {
            let mut e = Engine::<u32>::new(seed);
            let a = e.add_node(R { draws: vec![] });
            let b = e.add_node(R { draws: vec![] });
            e.schedule(SimTime::ZERO, a, 0);
            e.schedule(SimTime::ZERO, b, 0);
            e.run_until(SimTime::from_secs(1));
            (
                e.node::<R>(a).draws.clone(),
                e.node::<R>(b).draws.clone(),
            )
        };
        let (a1, b1) = run(99);
        let (a2, b2) = run(99);
        let (a3, _) = run(100);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1, "streams must differ between nodes");
        assert_ne!(a1, a3, "streams must differ between seeds");
    }

    #[test]
    #[should_panic(expected = "node type mismatch")]
    fn downcast_mismatch_panics() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        let _ = e.node::<Relay>(c);
    }

    #[test]
    fn run_to_completion_respects_event_cap() {
        struct Forever;
        impl Node<u32> for Forever {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                ctx.send_self(SimDuration::from_micros(1), 0);
            }
        }
        let mut e = Engine::<u32>::new(1);
        let f = e.add_node(Forever);
        e.schedule(SimTime::ZERO, f, 0);
        assert_eq!(e.run_to_completion(1000), 1000);
    }
}
