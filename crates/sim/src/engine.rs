//! The event loop: nodes, contexts and the engine itself.
//!
//! A simulation is a set of [`Node`]s exchanging messages of a single
//! domain-specific type `M` (e.g. an ATM message enum). The [`Engine`] owns
//! the nodes and the pending-event queue; when an event fires, the
//! destination node's [`Node::on_event`] runs with a [`Ctx`] through which
//! it can schedule further messages (to itself or to other nodes) and draw
//! deterministic random numbers.
//!
//! Determinism: events are delivered in `(time, insertion order)` order,
//! each node has its own RNG stream derived from the engine seed and its
//! node index, and simulated time is integer nanoseconds. Two runs with the
//! same seed and topology produce identical traces.
//!
//! The dispatch path is deliberately allocation-free and cache-friendly:
//! nodes live in *typed arenas* — one contiguous `Vec<N>` per concrete node
//! type — and a struct-of-arrays hot index maps each [`NodeId`] to its
//! `(arena, slot)` location. Registering a node never moves another node's
//! id, and same-type nodes (the hundreds of thousands of sources and
//! destinations of a metro-scale scene) sit back to back in memory instead
//! of behind one heap allocation each. A [`Ctx`] only touches the calendar
//! and the per-node RNG, which are disjoint engine fields, so sends go
//! straight into the calendar with no runtime borrow checks and no
//! intermediate buffer. Tracing is opt-in via [`Engine::set_trace_hook`];
//! when no hook is attached, [`Engine::run_until`] runs a tight loop with
//! no per-event branching on the hook.

use crate::event::EventQueue;
use crate::profile::LoopProf;
use crate::rng::derive_seed;
use crate::shard::{partition, EpochShared, ProbeRec, ShardHints, Staged, KEY_SHIFT};
use crate::snapshot::{
    EngineSnapshot, EventSnapshot, KvReader, KvWriter, NodeSnapshot, SnapshotMessage,
};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::HashMap;
use std::mem::size_of;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Identifier of a node within one [`Engine`]; dense indices starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// A simulation actor. Implementors hold all of their own state; the only
/// way state changes is through [`Node::on_event`].
///
/// `Send` is required so a node can be dispatched by an intra-run shard
/// worker thread (see [`crate::shard`]); a node is never accessed by two
/// threads at once — each shard owns its nodes exclusively for the whole
/// run.
pub trait Node<M>: Any + Send {
    /// Handle a message delivered at `ctx.now()`.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, msg: M);

    /// Serialize every *dynamic* field into `w` for a checkpoint.
    ///
    /// Configuration that the scenario rebuilds identically from its
    /// source (topology, rates, ids) must not be written — only state
    /// that evolves as events fire. The default refuses, so engines whose
    /// node types predate checkpointing fail loudly instead of silently
    /// dropping state.
    fn save_state(&self, _w: &mut KvWriter) -> Result<(), String> {
        Err(format!(
            "{} does not support checkpointing",
            std::any::type_name::<Self>()
        ))
    }

    /// Overwrite this node's dynamic fields from a checkpoint written by
    /// [`Node::save_state`]. The node was just rebuilt by the scenario,
    /// so static configuration is already in place.
    fn restore_state(&mut self, _r: &mut KvReader) -> Result<(), String> {
        Err(format!(
            "{} does not support checkpointing",
            std::any::type_name::<Self>()
        ))
    }
}

/// Observer invoked for every delivered event: `(time, destination, &msg)`.
///
/// The hook runs before the destination node's [`Node::on_event`].
pub type TraceHook<M> = Box<dyn FnMut(SimTime, NodeId, &M)>;

thread_local! {
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Total events dispatched by all engines on the current thread.
///
/// This is a monotonic counter; callers measure a run by taking the
/// difference before and after. It exists so harnesses (e.g. the `repro`
/// benchmark runner) can report events/second for a scenario without the
/// scenario having to thread its engine's [`Engine::events_processed`]
/// value out through its result type.
pub fn thread_events_dispatched() -> u64 {
    THREAD_EVENTS.with(|c| c.get())
}

fn note_dispatched(n: u64) {
    THREAD_EVENTS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Handle given to a node while it processes an event.
///
/// Sends go straight into the engine's calendar (borrowed exclusively for
/// the duration of the dispatch — the calendar, the node being run and its
/// RNG are disjoint engine fields): there is no intermediate outbox, so a
/// 48-byte ATM message is moved once instead of twice per send. Insertion
/// order — and therefore the FIFO tie-break among same-timestamp events —
/// is exactly the order of `send*` calls.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    queue: &'a mut EventQueue<M>,
    rng: &'a mut SmallRng,
    coalesced: u64,
    /// Upper bound on [`Ctx::quiet_until`]. `SimTime::MAX` on the serial
    /// path; `now` on the sharded path, where other shards may dispatch
    /// at any instant after `now` and the local calendar minimum is not
    /// a global quiescence bound.
    quiet_cap: SimTime,
    /// Sharded-run send routing; `None` on the serial path.
    shard: Option<ShardSend<'a, M>>,
}

/// Sharded send state lent to a [`Ctx`] for one dispatch: the executing
/// node's key-minting counter plus the partition map and the staging
/// queues for cross-shard sends (see [`crate::shard`]).
struct ShardSend<'a, M> {
    /// `(self_id + 1) << KEY_SHIFT`.
    key_base: u64,
    /// The executing node's per-sender counter (low key bits).
    counter: &'a mut u64,
    /// Node id → shard.
    node_shard: &'a [u32],
    my_shard: u32,
    /// Staging queues, indexed by destination shard.
    staged: &'a mut [Vec<Staged<M>>],
    /// End (exclusive) of the current epoch window. Cross-shard sends
    /// must land at or after it — guaranteed by the lookahead.
    epoch_end: SimTime,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node currently executing.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Route one outgoing event: straight into the calendar serially;
    /// under sharding, mint the deterministic ordering key and either
    /// insert locally or stage for the destination shard.
    #[inline]
    fn push_event(&mut self, at: SimTime, dst: NodeId, msg: M) {
        match &mut self.shard {
            None => self.queue.push(at, dst, msg),
            Some(s) => {
                let key = s.key_base | *s.counter;
                *s.counter += 1;
                debug_assert!(
                    *s.counter < 1 << KEY_SHIFT,
                    "per-sender key space exhausted"
                );
                let to = s.node_shard[dst.0];
                if to == s.my_shard {
                    self.queue.restore_push(at, key, dst, msg);
                } else {
                    assert!(
                        at >= s.epoch_end,
                        "cross-shard send from node {} to node {} arrives at {:?}, \
                         inside the current epoch (ends {:?}): the topology's declared \
                         lookahead is violated — an inter-node message was sent with \
                         less than the minimum link propagation delay",
                        self.self_id.0,
                        dst.0,
                        at,
                        s.epoch_end
                    );
                    s.staged[to as usize].push(Staged {
                        time: at,
                        key,
                        dst,
                        msg,
                    });
                }
            }
        }
    }

    /// Deliver `msg` to `dst` after `delay`.
    pub fn send(&mut self, dst: NodeId, delay: SimDuration, msg: M) {
        let at = self.now + delay;
        self.push_event(at, dst, msg);
    }

    /// Deliver `msg` to `dst` at absolute time `at` (must not be in the
    /// past). Debug builds assert on a past-time `at`; release builds
    /// clamp it to `now` and count the incident in the `schedule_past`
    /// telemetry counter — a silently-accepted past timestamp would
    /// corrupt calendar ordering, and a hard panic in release would turn
    /// a recoverable scenario bug into a crashed sweep.
    pub fn send_at(&mut self, dst: NodeId, at: SimTime, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = if at < self.now {
            crate::telemetry::note_schedule_past();
            self.now
        } else {
            at
        };
        self.push_event(at, dst, msg);
    }

    /// Deliver `msg` back to the executing node after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// This node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Time of the earliest *pending* calendar event, or [`SimTime::MAX`]
    /// when the calendar is empty.
    ///
    /// During one `on_event`, no other node can run before this instant:
    /// events only come from dispatches, and the next dispatch is the
    /// calendar's minimum (which includes anything this node already sent
    /// during the current event). A node can therefore act for every
    /// instant strictly before `quiet_until()` in one dispatch — the
    /// busy-port cell batch in `phantom-atm` — with byte-identical
    /// results.
    ///
    /// On the sharded path this degenerates to `now()`: a local shard's
    /// calendar minimum says nothing about other shards, so the only
    /// sound quiescence bound is the current instant. Batching nodes then
    /// fall back to one unit of work per timer, identically at every
    /// shard count.
    pub fn quiet_until(&self) -> SimTime {
        self.queue
            .peek_time()
            .unwrap_or(SimTime::MAX)
            .min(self.quiet_cap)
    }

    /// Report `n` logical events handled inside this dispatch beyond the
    /// delivered one (e.g. cell transmissions coalesced into one timer).
    /// Keeps [`Engine::events_processed`] and the thread dispatch counter
    /// comparable whether or not batching is enabled.
    pub fn note_coalesced(&mut self, n: u64) {
        self.coalesced += n;
    }

    /// Emit a semantic [`crate::probe::ProbeEvent`] to the thread's
    /// installed probe, if any. The closure runs only when a probe is
    /// installed, so an untraced run pays a single predictable branch.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> crate::probe::ProbeEvent) {
        crate::probe::emit(self.now, self.self_id, make);
    }
}

/// Where a node lives: which typed arena and which slot inside it.
///
/// This is the struct-of-arrays hot field of the dispatch path: the
/// per-event lookup reads 8 contiguous bytes from `locs[dst]` instead of
/// chasing a boxed fat pointer per node.
#[derive(Clone, Copy)]
struct Loc {
    arena: u32,
    slot: u32,
}

/// One contiguous storage block for every node of a single concrete type.
///
/// Nodes sit in `UnsafeCell` so the sharded run path can hand disjoint
/// `&mut N` out of a *shared* arena reference — one shard worker per
/// node, enforced by the partition map. `UnsafeCell<N>` has the same
/// layout as `N`, so the serial path's cache behaviour is unchanged.
struct TypedArena<N> {
    nodes: Vec<UnsafeCell<N>>,
}

// SAFETY: the arena is a fixed-size slot table. Shared access only ever
// happens on the sharded run path, where each slot is dispatched (or
// read) by exactly one thread at a time — the engine partitions node ids
// disjointly across shard workers and joins them before any other access.
// Handing `&mut N` across threads under that exclusivity protocol is the
// `Mutex` pattern, which requires `N: Send` (guaranteed by `Node: Send`).
#[allow(unsafe_code)]
unsafe impl<N: Send> Sync for TypedArena<N> {}

/// Object-safe facade over a [`TypedArena<N>`]. The engine owns arenas
/// through this trait; the single virtual call per dispatch lands in a
/// monomorphized body whose `on_event` call is static and inlinable —
/// the same indirect-call count as the old `Box<dyn Node>` layout, but
/// with same-type nodes stored back to back. `Sync` so shard workers can
/// dispatch through a shared arena slice (see [`TypedArena`]).
trait NodeArena<M>: Sync {
    fn dispatch(&mut self, slot: u32, ctx: &mut Ctx<'_, M>, msg: M);
    /// Dispatch through a shared reference, for shard workers.
    ///
    /// # Safety
    /// The caller must guarantee that no other thread accesses `slot`
    /// concurrently — the engine's shard partition assigns each slot to
    /// exactly one worker for the duration of the run.
    #[allow(unsafe_code)]
    unsafe fn dispatch_shared(&self, slot: u32, ctx: &mut Ctx<'_, M>, msg: M);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn len(&self) -> usize;
    fn type_name(&self) -> &'static str;
    /// Bytes of arena-owned storage (capacity × node size). Heap blocks
    /// owned by the nodes themselves (queues, series) are not visible
    /// from here and are not counted.
    fn bytes(&self) -> usize;
    fn save_node(&self, slot: u32, w: &mut KvWriter) -> Result<(), String>;
    fn restore_node(&mut self, slot: u32, r: &mut KvReader) -> Result<(), String>;
}

impl<M: 'static, N: Node<M>> NodeArena<M> for TypedArena<N> {
    #[inline]
    fn dispatch(&mut self, slot: u32, ctx: &mut Ctx<'_, M>, msg: M) {
        self.nodes[slot as usize].get_mut().on_event(ctx, msg);
    }

    #[inline]
    #[allow(unsafe_code)]
    unsafe fn dispatch_shared(&self, slot: u32, ctx: &mut Ctx<'_, M>, msg: M) {
        // SAFETY: per the trait contract the caller holds exclusive
        // logical ownership of `slot`; no other reference to this node
        // exists while `on_event` runs.
        let node = unsafe { &mut *self.nodes[slot as usize].get() };
        node.on_event(ctx, msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn type_name(&self) -> &'static str {
        std::any::type_name::<N>()
    }

    fn bytes(&self) -> usize {
        self.nodes.capacity() * size_of::<UnsafeCell<N>>()
    }

    fn save_node(&self, slot: u32, w: &mut KvWriter) -> Result<(), String> {
        #[allow(unsafe_code)]
        // SAFETY: `save_node` takes `&self` on the engine's single
        // driving thread while no shard workers are alive (they are
        // scoped to `run_until` and joined before it returns), so the
        // shared read cannot race a dispatch.
        let node = unsafe { &*self.nodes[slot as usize].get() };
        node.save_state(w)
    }

    fn restore_node(&mut self, slot: u32, r: &mut KvReader) -> Result<(), String> {
        self.nodes[slot as usize].get_mut().restore_state(r)
    }
}

/// Per-arena accounting snapshot (see [`Engine::arena_stats`]).
#[derive(Clone, Debug)]
pub struct ArenaStats {
    /// `std::any::type_name` of the concrete node type.
    pub type_name: &'static str,
    /// Number of nodes stored in this arena.
    pub nodes: usize,
    /// Bytes of arena-owned storage (capacity × node size).
    pub bytes: usize,
}

/// The simulation engine: owns nodes, the event calendar and the clock.
pub struct Engine<M> {
    now: SimTime,
    /// The calendar. During a dispatch it is lent to the node's [`Ctx`]
    /// via a split field borrow (the node arenas and the RNGs are the
    /// other two), so sends push directly with no runtime borrow checks.
    queue: EventQueue<M>,
    /// Typed arenas in first-registration order of their node types.
    arenas: Vec<Box<dyn NodeArena<M>>>,
    /// Concrete node type → index into `arenas`.
    arena_ids: HashMap<TypeId, u32>,
    /// `NodeId → (arena, slot)`; the hot dispatch array, indexed densely.
    locs: Vec<Loc>,
    rngs: Vec<SmallRng>,
    seed: u64,
    events_processed: u64,
    trace: Option<TraceHook<M>>,
    /// Force the profiler on for this engine regardless of the
    /// thread-local bracket (see [`Engine::profile`]).
    profiling: bool,
    /// Optional message classifier for the profiler's per-event-kind
    /// view; unclassified dispatches land in the `"event"` bucket.
    classify: Option<fn(&M) -> &'static str>,
    /// Per-node send counters minting sharded ordering keys. Persisted
    /// across `run_until` calls so heartbeat-sliced runs mint the same
    /// keys as single-call runs. Empty until the first sharded run.
    send_seq: Vec<u64>,
    /// Partitioning hints attached by the topology builder; absent hints
    /// (or a zero lookahead) make any shard request fall back to the
    /// serial path.
    shard_hints: Option<ShardHints>,
    /// Cached partition for the current `(shard count, node count)`.
    shard_plan: Option<ShardPlan>,
    /// Sticky flag: a [`crate::cancel::CancelToken`] stopped a run call
    /// early. Once set it never clears — a cancelled engine is for
    /// post-mortem inspection, not further simulation.
    cancelled: bool,
}

/// A computed node-to-shard assignment, cached across `run_until` slices.
struct ShardPlan {
    k: usize,
    nodes: usize,
    node_shard: Vec<u32>,
}

impl<M: 'static> Engine<M> {
    /// A fresh engine whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            arenas: Vec::new(),
            arena_ids: HashMap::new(),
            locs: Vec::new(),
            rngs: Vec::new(),
            seed,
            events_processed: 0,
            trace: None,
            profiling: false,
            classify: None,
            send_seq: Vec::new(),
            shard_hints: None,
            shard_plan: None,
            cancelled: false,
        }
    }

    /// Attach topology partitioning hints (see [`ShardHints`]); builders
    /// call this at the end of construction. Without hints — or with a
    /// zero lookahead — a [`crate::shard::set_shards`] request is ignored
    /// and the engine runs serially.
    pub fn set_shard_hints(&mut self, hints: ShardHints) {
        self.shard_hints = Some(hints);
        self.shard_plan = None;
    }

    /// The attached partitioning hints, if any.
    pub fn shard_hints(&self) -> Option<&ShardHints> {
        self.shard_hints.as_ref()
    }

    /// Force the in-run profiler on (or off) for this engine. The usual
    /// way to profile is the thread-local bracket
    /// ([`crate::profile::begin_profile`]), which also covers engines
    /// built inside scenario code; this switch exists for callers that
    /// own their engine directly. Either way the harvest is the
    /// thread-local collector, so bracket the run with
    /// `begin_profile`/`finish` to read the report. Profiling never
    /// changes simulation results — only wall-clock cost.
    pub fn profile(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Install a classifier mapping each message to a stable event-kind
    /// name for the profiler's per-kind view (e.g. `"cell"` vs
    /// `"timer.tx_done"`). Only called while profiling is enabled.
    pub fn set_event_classifier(&mut self, f: fn(&M) -> &'static str) {
        self.classify = Some(f);
    }

    /// Register a node; its id is returned and is stable for the whole run.
    ///
    /// Ids are handed out densely in registration order regardless of
    /// concrete type, and each id's RNG stream derives from `(seed, id)` —
    /// so the arena layout underneath is invisible to the simulation:
    /// traces are byte-identical to a flat boxed-node store.
    pub fn add_node<N: Node<M>>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.locs.len());
        let arena = match self.arena_ids.get(&TypeId::of::<N>()) {
            Some(&a) => a,
            None => {
                let a = u32::try_from(self.arenas.len()).expect("arena count overflow");
                self.arenas
                    .push(Box::new(TypedArena::<N> { nodes: Vec::new() }));
                self.arena_ids.insert(TypeId::of::<N>(), a);
                a
            }
        };
        let typed = self.arenas[arena as usize]
            .as_any_mut()
            .downcast_mut::<TypedArena<N>>()
            .expect("arena registry out of sync");
        let slot = u32::try_from(typed.nodes.len()).expect("arena slot overflow");
        typed.nodes.push(UnsafeCell::new(node));
        self.locs.push(Loc { arena, slot });
        self.rngs
            .push(SmallRng::seed_from_u64(derive_seed(self.seed, id.0 as u64)));
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.locs.len()
    }

    /// Accounting snapshot of every typed arena, in first-registration
    /// order. Scale harnesses use this to attribute memory per node type.
    pub fn arena_stats(&self) -> Vec<ArenaStats> {
        self.arenas
            .iter()
            .map(|a| ArenaStats {
                type_name: a.type_name(),
                nodes: a.len(),
                bytes: a.bytes(),
            })
            .collect()
    }

    /// Bytes of engine-owned per-node storage: the typed arenas plus the
    /// id index and RNG streams. Node-internal heap blocks (queues,
    /// recorded series) are owned by the nodes and not visible here.
    pub fn nodes_footprint_bytes(&self) -> usize {
        self.arenas.iter().map(|a| a.bytes()).sum::<usize>()
            + self.locs.capacity() * size_of::<Loc>()
            + self.rngs.capacity() * size_of::<SmallRng>()
    }

    /// Attach an observer called for every delivered event. Replaces any
    /// previously attached hook. Tracing does not change the simulation —
    /// only the wall-clock cost of running it.
    pub fn set_trace_hook(&mut self, hook: TraceHook<M>) {
        self.trace = Some(hook);
    }

    /// Detach the trace hook, restoring the untraced fast path.
    pub fn clear_trace_hook(&mut self) {
        self.trace = None;
    }

    /// Schedule an initial message from outside any node.
    pub fn schedule(&mut self, time: SimTime, dst: NodeId, msg: M) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.push(time, dst, msg);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Did a [`crate::cancel::CancelToken`] stop a run call early? Sticky
    /// once set. A cancelled engine's clock sits at the last dispatched
    /// event, not the requested horizon.
    pub fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// Deliver one already-popped event: advance the clock, run the
    /// destination node, and move anything it sent into the calendar.
    #[inline]
    fn dispatch(&mut self, time: SimTime, dst: NodeId, msg: M) {
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        let loc = self.locs[dst.0];
        let mut ctx = Ctx {
            now: time,
            self_id: dst,
            queue: &mut self.queue,
            rng: &mut self.rngs[dst.0],
            coalesced: 0,
            quiet_cap: SimTime::MAX,
            shard: None,
        };
        self.arenas[loc.arena as usize].dispatch(loc.slot, &mut ctx, msg);
        self.events_processed += 1 + ctx.coalesced;
    }

    /// Dispatch the next event. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        let start = self.events_processed;
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        if let Some(hook) = self.trace.as_mut() {
            hook(ev.time, ev.dst, &ev.msg);
        }
        self.dispatch(ev.time, ev.dst, ev.msg);
        note_dispatched(self.events_processed - start);
        true
    }

    /// True when any opt-in observer wants the per-event slow loop:
    /// a trace hook, the profiler (engine switch or thread bracket) or
    /// an armed flight recorder. Checked once per run call — the
    /// untraced, unprofiled fast path stays free of per-event branches.
    #[inline]
    fn instrumented(&self) -> bool {
        self.trace.is_some()
            || self.profiling
            || crate::profile::enabled()
            || crate::flight::armed()
    }

    /// Run until the calendar is empty or `max_events` have been dispatched.
    /// Returns the number of events dispatched by this call.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        if !self.instrumented() {
            while self.events_processed - start < max_events {
                let Some(ev) = self.queue.pop() else { break };
                self.dispatch(ev.time, ev.dst, ev.msg);
            }
        } else {
            self.run_instrumented(None, max_events);
        }
        let done = self.events_processed - start;
        note_dispatched(done);
        done
    }

    /// Run until the clock reaches `t` or `max_events` have been
    /// dispatched, whichever comes first. Returns the number of events
    /// dispatched by this call. The clock advances to `t` only when the
    /// calendar ran dry of events at or before `t` (i.e. the time bound,
    /// not the event cap, ended the call) — a capped stop leaves `now` at
    /// the last dispatched event so a checkpoint taken here resumes
    /// mid-flight.
    ///
    /// The combined bound exists for checkpointing: `--checkpoint-every
    /// Nev` slices a run by event count while the scenario still drives
    /// the overall horizon by time.
    pub fn run_until_capped(&mut self, t: SimTime, max_events: u64) -> u64 {
        let start = self.events_processed;
        if !self.instrumented() {
            while self.events_processed - start < max_events {
                let Some(ev) = self.queue.pop_at_or_before(t) else {
                    break;
                };
                self.dispatch(ev.time, ev.dst, ev.msg);
            }
        } else {
            self.run_instrumented(Some(t), max_events);
        }
        let done = self.events_processed - start;
        note_dispatched(done);
        // `done` can overshoot `max_events` via coalescing; either way a
        // cap-limited stop must not advance the clock past real events —
        // and neither must a cancelled one.
        if done < max_events && self.now < t && !self.cancelled {
            self.now = t;
        }
        done
    }

    /// The observed run loop: trace hook, profiler timing and flight
    /// recorder cursors, each behind its own check. Dispatch order is
    /// identical to the fast loop — observers read, never steer.
    ///
    /// Profiler timing uses chained timestamps: the interval from the
    /// previous dispatch's end to the pop's return is calendar time, the
    /// interval across the dispatch (including any trace hook) is the
    /// destination node's self time. Every nanosecond of loop wall time
    /// lands in exactly one bucket, so bucket totals sum to the loop
    /// wall by construction.
    #[cold]
    #[inline(never)]
    fn run_instrumented(&mut self, until: Option<SimTime>, max_events: u64) {
        let profiling = self.profiling || crate::profile::enabled();
        let flight_on = crate::flight::armed();
        if flight_on {
            crate::flight::note_run_start(&self.arena_stats());
        }
        if profiling {
            self.queue.set_profiling(true);
        }
        let start = self.events_processed;
        // The instrumented loop already pays per-event timestamps, so the
        // cancel token is simply checked before every pop.
        let cancel = crate::cancel::token();
        let mut prof = profiling.then(|| LoopProf::new(self.arenas.len()));
        let loop_start = Instant::now();
        let mut mark = loop_start;
        while self.events_processed - start < max_events {
            if let Some(tok) = &cancel {
                if tok.is_cancelled() {
                    self.cancelled = true;
                    break;
                }
            }
            let ev = match until {
                Some(t) => self.queue.pop_at_or_before(t),
                None => self.queue.pop(),
            };
            let Some(ev) = ev else { break };
            let popped = prof.as_mut().map(|p| {
                let now = Instant::now();
                p.pop_ns += now.duration_since(mark).as_nanos() as u64;
                now
            });
            if let Some(hook) = self.trace.as_mut() {
                hook(ev.time, ev.dst, &ev.msg);
            }
            let dst = ev.dst;
            let arena = self.locs[dst.0].arena as usize;
            let kind = match (&prof, self.classify) {
                (Some(_), Some(f)) => f(&ev.msg),
                _ => "event",
            };
            let before = self.events_processed;
            self.dispatch(ev.time, dst, ev.msg);
            if let Some(p) = prof.as_mut() {
                let done = Instant::now();
                let ns = done
                    .duration_since(popped.expect("popped set while profiling"))
                    .as_nanos() as u64;
                p.note(arena, kind, ns, self.events_processed - before);
                mark = done;
            }
            if flight_on {
                crate::flight::note_dispatch(self.now, self.events_processed, self.queue.len());
            }
        }
        if let Some(mut p) = prof {
            let end = Instant::now();
            // The final failed pop (or cap check) since the last mark is
            // calendar time too.
            p.pop_ns += end.duration_since(mark).as_nanos() as u64;
            p.wall_ns = end.duration_since(loop_start).as_nanos() as u64;
            let cal = self.queue.take_profile();
            self.queue.set_profiling(false);
            let names: Vec<&'static str> = self.arenas.iter().map(|a| a.type_name()).collect();
            crate::profile::merge_run(p, &cal, &names);
        }
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is of a different type — an id mix-up is a bug in
    /// the scenario, not a recoverable condition.
    pub fn node<N: Node<M>>(&self, id: NodeId) -> &N {
        let loc = self.locs[id.0];
        let typed = self.arenas[loc.arena as usize]
            .as_any()
            .downcast_ref::<TypedArena<N>>()
            .expect("node type mismatch");
        #[allow(unsafe_code)]
        // SAFETY: `&self` on the driving thread; shard workers are scoped
        // to `run_until` and joined before it returns, so no concurrent
        // mutation of the slot can exist.
        unsafe {
            &*typed.nodes[loc.slot as usize].get()
        }
    }

    /// Mutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics on a type mismatch, as with [`Engine::node`].
    pub fn node_mut<N: Node<M>>(&mut self, id: NodeId) -> &mut N {
        let loc = self.locs[id.0];
        let typed = self.arenas[loc.arena as usize]
            .as_any_mut()
            .downcast_mut::<TypedArena<N>>()
            .expect("node type mismatch");
        typed.nodes[loc.slot as usize].get_mut()
    }
}

/// Raw-pointer wrapper asserting cross-thread shareability of a table
/// whose entries shard workers access *disjointly* (each worker touches
/// only its own nodes' indices).
struct SyncPtr<T>(*mut T);

impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncPtr<T> {}

// SAFETY: the pointer targets a table that outlives every worker (the
// engine's `rngs`/`send_seq` vectors, alive across the scoped threads),
// and the shard partition guarantees index-disjoint access — the same
// exclusivity protocol as the node arenas.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SyncPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// What one shard worker hands back when its run ends.
struct WorkerOut<M> {
    queue: EventQueue<M>,
    events: u64,
    prof: Option<LoopProf>,
    cal: crate::profile::CalendarStats,
    counters: Option<crate::telemetry::RunCounters>,
}

/// One shard's run state: its calendar, its staging queues, and shared
/// views of the engine tables it may touch (disjointly from its peers).
struct ShardWorker<'a, M> {
    w: usize,
    queue: EventQueue<M>,
    /// Cross-shard sends staged this epoch, by destination shard.
    staged: Vec<Vec<Staged<M>>>,
    arenas: &'a [Box<dyn NodeArena<M>>],
    locs: &'a [Loc],
    node_shard: &'a [u32],
    rngs: SyncPtr<SmallRng>,
    seqs: SyncPtr<u64>,
    classify: Option<fn(&M) -> &'static str>,
    events: u64,
    /// `(time, key)` of the in-flight dispatch, shared with the thread's
    /// buffering probe so emissions carry their merge-order tag.
    cur: Option<Rc<Cell<(u64, u64)>>>,
    /// The buffering probe's output, drained at each epoch barrier.
    out: Option<Rc<RefCell<Vec<ProbeRec>>>>,
    prof: Option<LoopProf>,
}

impl<'a, M: 'static> ShardWorker<'a, M> {
    /// Dispatch every local event in `[window start, cap]`; sends beyond
    /// the shard stage until [`ShardWorker::publish`].
    fn run_window(&mut self, cap: SimTime, end: SimTime) {
        let t0 = self.prof.as_ref().map(|_| Instant::now());
        let mut mark = t0;
        loop {
            let Some(ev) = self.queue.pop_at_or_before(cap) else {
                break;
            };
            let popped = self.prof.as_mut().map(|p| {
                let now = Instant::now();
                p.pop_ns += now.duration_since(mark.expect("mark set")).as_nanos() as u64;
                now
            });
            debug_assert_eq!(
                self.node_shard[ev.dst.0], self.w as u32,
                "event routed to the wrong shard"
            );
            if let Some(cur) = &self.cur {
                cur.set((ev.time.0, ev.seq));
            }
            let loc = self.locs[ev.dst.0];
            let kind = match (&self.prof, self.classify) {
                (Some(_), Some(f)) => f(&ev.msg),
                _ => "event",
            };
            let before = self.events;
            #[allow(unsafe_code)]
            // SAFETY: `ev.dst` belongs to this shard (asserted above), so
            // this worker is the only thread touching its RNG stream, its
            // send counter and its arena slot for the whole run.
            let mut ctx = Ctx {
                now: ev.time,
                self_id: ev.dst,
                queue: &mut self.queue,
                rng: unsafe { &mut *self.rngs.0.add(ev.dst.0) },
                coalesced: 0,
                quiet_cap: ev.time,
                shard: Some(ShardSend {
                    key_base: (ev.dst.0 as u64 + 1) << KEY_SHIFT,
                    counter: unsafe { &mut *self.seqs.0.add(ev.dst.0) },
                    node_shard: self.node_shard,
                    my_shard: self.w as u32,
                    staged: &mut self.staged,
                    epoch_end: end,
                }),
            };
            #[allow(unsafe_code)]
            // SAFETY: same slot-exclusivity argument as above.
            unsafe {
                self.arenas[loc.arena as usize].dispatch_shared(loc.slot, &mut ctx, ev.msg)
            };
            self.events += 1 + ctx.coalesced;
            if let Some(p) = self.prof.as_mut() {
                let done = Instant::now();
                let ns = done
                    .duration_since(popped.expect("popped set while profiling"))
                    .as_nanos() as u64;
                p.note(loc.arena as usize, kind, ns, self.events - before);
                mark = Some(done);
            }
        }
        if let Some(p) = self.prof.as_mut() {
            let done = Instant::now();
            p.pop_ns += done.duration_since(mark.expect("mark set")).as_nanos() as u64;
            // Summed across windows and workers: under sharding the
            // profiler reports CPU time, not wall time.
            p.wall_ns += done.duration_since(t0.expect("t0 set")).as_nanos() as u64;
        }
    }

    /// Publish staged cross-shard sends and buffered probe emissions into
    /// the shared epoch state (before barrier A).
    fn publish(&mut self, shared: &EpochShared<M>) {
        for to in 0..self.staged.len() {
            if to != self.w && !self.staged[to].is_empty() {
                let mut slot = shared.inbox[to][self.w].lock().expect("inbox poisoned");
                slot.append(&mut self.staged[to]);
            }
        }
        if let Some(out) = &self.out {
            let mut buf = out.borrow_mut();
            if !buf.is_empty() {
                let mut slot = shared.probes[self.w].lock().expect("probe slot poisoned");
                slot.append(&mut buf);
            }
        }
    }

    /// Drain this shard's inbox into its calendar and publish its new
    /// minimum pending time (between barriers A and B).
    fn drain_inbox(&mut self, shared: &EpochShared<M>) {
        for from in &shared.inbox[self.w] {
            let mut v = from.lock().expect("inbox poisoned");
            for s in v.drain(..) {
                self.queue.restore_push(s.time, s.key, s.dst, s.msg);
            }
        }
        let min = self.queue.peek_time().map_or(u64::MAX, |t| t.0);
        shared.mins[self.w].store(min, Ordering::Relaxed);
    }

    /// The non-coordinator epoch loop: window, publish, drain, then wait
    /// for the coordinator's next-window decision.
    fn epoch_loop(&mut self, shared: &EpochShared<M>, until: SimTime) {
        loop {
            let e = shared.end.load(Ordering::Relaxed);
            let cap = SimTime((e - 1).min(until.0));
            self.run_window(cap, SimTime(e));
            self.publish(shared);
            shared.barrier.wait(); // A: all sends and probes published
            self.drain_inbox(shared);
            shared.barrier.wait(); // B: all calendars updated, mins out
            shared.barrier.wait(); // C: coordinator picked the next window
            if shared.done.load(Ordering::Relaxed) {
                break;
            }
        }
    }
}

/// Replay buffered probe emissions into the real probe in deterministic
/// global dispatch order: `(dispatch time, dispatch key, emission idx)`.
fn deliver_probe_recs(real: &mut dyn crate::probe::Probe, recs: &mut Vec<ProbeRec>) {
    recs.sort_unstable_by_key(|r| (r.at, r.key, r.idx));
    for r in recs.drain(..) {
        real.on_event(r.t, r.node, &r.ev);
    }
}

/// Install a fresh buffering probe on the current thread, returning the
/// shared cursor and output buffer handles the worker drives.
#[allow(clippy::type_complexity)]
fn install_buffer_probe() -> (Rc<Cell<(u64, u64)>>, Rc<RefCell<Vec<ProbeRec>>>) {
    let cur = Rc::new(Cell::new((0u64, u64::MAX)));
    let out: Rc<RefCell<Vec<ProbeRec>>> = Rc::default();
    let prev = crate::probe::install_thread_probe(Box::new(crate::shard::BufferProbe::new(
        Rc::clone(&cur),
        Rc::clone(&out),
    )));
    debug_assert!(prev.is_none(), "buffer probe replaced a live probe");
    drop(prev);
    (cur, out)
}

impl<M: 'static + Send> Engine<M> {
    /// Run until the clock reaches `t` (inclusive of events at exactly `t`).
    /// The clock is left at `t` even if the calendar empties earlier.
    ///
    /// When the current thread requested intra-run shards
    /// ([`crate::shard::set_shards`]) and the engine carries
    /// [`ShardHints`] with a non-zero lookahead, the run executes on the
    /// conservative sharded path: byte-identical results at any shard
    /// count, but a *different* (equally deterministic) equal-time
    /// tie-break than the serial engine. A trace hook or an armed flight
    /// recorder forces the serial loop — consistently at every shard
    /// count, so the invariance contract still holds.
    pub fn run_until(&mut self, t: SimTime) {
        let start = self.events_processed;
        let cancel = crate::cancel::token();
        let k = crate::shard::shards();
        // An armed cancel token forces the serial loop, like a trace
        // hook: a cancelled sharded epoch would have no deterministic
        // truncation point. Consistent at every shard count, so the
        // shard-invariance contract holds.
        let sharded = k > 0
            && cancel.is_none()
            && self.trace.is_none()
            && !crate::flight::armed()
            && self
                .shard_hints
                .as_ref()
                .is_some_and(|h| !h.lookahead.is_zero());
        if sharded {
            self.run_sharded(t, k);
        } else if !self.instrumented() {
            match &cancel {
                None => {
                    // Fast path: no per-event hook check, one heap
                    // access per event.
                    while let Some(ev) = self.queue.pop_at_or_before(t) {
                        self.dispatch(ev.time, ev.dst, ev.msg);
                    }
                }
                Some(tok) => self.run_cancellable(t, tok),
            }
        } else {
            self.run_instrumented(Some(t), u64::MAX);
        }
        note_dispatched(self.events_processed - start);
        if self.now < t && !self.cancelled {
            self.now = t;
        }
    }

    /// The cancellable serial loop: dispatch order is identical to the
    /// fast path, with the thread's [`crate::cancel::CancelToken`]
    /// consulted whenever the next event enters a new calendar slice
    /// ([`crate::event::SLICE_NS`] ns) — plus an every-64Ki-events
    /// fallback so a degenerate single-slice run still observes the
    /// token. The check runs *before* the pop, so a cancelled run stops
    /// clean: the event the check rejects stays in the calendar and
    /// every probe has seen complete events only.
    #[cold]
    fn run_cancellable(&mut self, t: SimTime, tok: &crate::cancel::CancelToken) {
        const EVENT_CHECK_PERIOD: u64 = 1 << 16;
        if tok.is_cancelled() {
            self.cancelled = true;
            return;
        }
        let mut slice = self.now.0 >> crate::event::SLICE_SHIFT;
        let mut unchecked: u64 = 0;
        loop {
            let Some(next) = self.queue.peek_time() else {
                return;
            };
            if next > t {
                return;
            }
            let s = next.0 >> crate::event::SLICE_SHIFT;
            if s != slice || unchecked >= EVENT_CHECK_PERIOD {
                slice = s;
                unchecked = 0;
                if tok.is_cancelled() {
                    self.cancelled = true;
                    return;
                }
            }
            unchecked += 1;
            let ev = self.queue.pop_at_or_before(t).expect("peeked non-empty");
            self.dispatch(ev.time, ev.dst, ev.msg);
        }
    }

    /// The conservative sharded run: partition the calendar, advance all
    /// shards in lookahead-bounded epochs (worker 0 rides the calling
    /// thread and doubles as coordinator), then merge the calendars back.
    #[cold]
    fn run_sharded(&mut self, until: SimTime, k: usize) {
        let n = self.locs.len();
        if self.send_seq.len() < n {
            self.send_seq.resize(n, 0);
        }
        let fresh_plan = !matches!(
            &self.shard_plan,
            Some(p) if p.k == k && p.nodes == n
        );
        if fresh_plan {
            let hints = self
                .shard_hints
                .as_ref()
                .expect("sharded run without hints");
            self.shard_plan = Some(ShardPlan {
                k,
                nodes: n,
                node_shard: partition(n, hints, k),
            });
        }
        let plan = self.shard_plan.take().expect("plan just ensured");
        let lookahead = self.shard_hints.as_ref().expect("hints present").lookahead;

        // Split the calendar into per-shard calendars, preserving every
        // event's ordering key.
        let saved_next_seq = self.queue.next_seq();
        let mut old = std::mem::take(&mut self.queue);
        let mut queues: Vec<EventQueue<M>> = (0..k).map(|_| EventQueue::new()).collect();
        while let Some(ev) = old.pop() {
            let s = plan.node_shard[ev.dst.0] as usize;
            queues[s].restore_push(ev.time, ev.seq, ev.dst, ev.msg);
        }

        let profiling = self.profiling || crate::profile::enabled();
        if profiling {
            for q in &mut queues {
                q.set_profiling(true);
            }
        }

        // Take over the thread probe: workers buffer emissions, the
        // coordinator replays them merged in global dispatch order.
        let mut real = crate::probe::take_thread_probe();
        let trace_active = real.is_some();

        let first = queues.iter().filter_map(|q| q.peek_time()).min();
        let names: Vec<&'static str> = self.arenas.iter().map(|a| a.type_name()).collect();

        let outs: Vec<WorkerOut<M>> = match first {
            Some(first) if first <= until => {
                let rngs = SyncPtr(self.rngs.as_mut_ptr());
                let seqs = SyncPtr(self.send_seq.as_mut_ptr());
                let arenas: &[Box<dyn NodeArena<M>>] = &self.arenas;
                let locs: &[Loc] = &self.locs;
                let node_shard: &[u32] = &plan.node_shard;
                let classify = self.classify;
                let end0 = SimTime(first.0.saturating_add(lookahead.0));

                let make_worker = |w: usize, queue: EventQueue<M>| {
                    let (cur, out) = if trace_active {
                        let (c, o) = install_buffer_probe();
                        (Some(c), Some(o))
                    } else {
                        (None, None)
                    };
                    ShardWorker {
                        w,
                        queue,
                        staged: (0..k).map(|_| Vec::new()).collect(),
                        arenas,
                        locs,
                        node_shard,
                        rngs,
                        seqs,
                        classify,
                        events: 0,
                        cur,
                        out,
                        prof: profiling.then(|| LoopProf::new(arenas.len())),
                    }
                };
                let finish_worker = |mut wk: ShardWorker<'_, M>,
                                     counters: Option<crate::telemetry::RunCounters>|
                 -> WorkerOut<M> {
                    if wk.cur.is_some() {
                        drop(crate::probe::take_thread_probe());
                    }
                    let cal = wk.queue.take_profile();
                    WorkerOut {
                        queue: wk.queue,
                        events: wk.events,
                        prof: wk.prof.take(),
                        cal,
                        counters,
                    }
                };

                if k == 1 {
                    // Single shard: same windows, same ordering keys and
                    // the same merged probe order as k ≥ 2, with no
                    // threads or barriers.
                    let mut wk = make_worker(0, queues.pop().expect("one queue"));
                    let mut s = first.0;
                    loop {
                        let e = s.saturating_add(lookahead.0);
                        let cap = SimTime((e - 1).min(until.0));
                        wk.run_window(cap, SimTime(e));
                        if let (Some(p), Some(out)) = (real.as_deref_mut(), wk.out.as_ref()) {
                            deliver_probe_recs(p, &mut out.borrow_mut());
                        }
                        match wk.queue.peek_time() {
                            Some(t) if t <= until => s = t.0,
                            _ => break,
                        }
                    }
                    vec![finish_worker(wk, None)]
                } else {
                    let shared = EpochShared::<M>::new(k, first, end0);
                    let mut rest: Vec<EventQueue<M>> = queues.split_off(1);
                    let q0 = queues.pop().expect("shard 0 queue");
                    let shared_ref = &shared;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = rest
                            .drain(..)
                            .enumerate()
                            .map(|(i, q)| {
                                let w = i + 1;
                                scope.spawn(move || {
                                    let marker = crate::telemetry::begin_run();
                                    let mut wk = make_worker(w, q);
                                    wk.epoch_loop(shared_ref, until);
                                    finish_worker(wk, Some(marker.finish()))
                                })
                            })
                            .collect();

                        // Worker 0 + coordinator, on the calling thread.
                        let mut wk = make_worker(0, q0);
                        loop {
                            let e = shared.end.load(Ordering::Relaxed);
                            let cap = SimTime((e - 1).min(until.0));
                            wk.run_window(cap, SimTime(e));
                            wk.publish(&shared);
                            shared.barrier.wait(); // A
                            wk.drain_inbox(&shared);
                            shared.barrier.wait(); // B
                                                   // Coordinator: merge this epoch's probe
                                                   // buffers in global order, pick the next
                                                   // window (the global minimum pending time).
                            if trace_active {
                                let mut merged: Vec<ProbeRec> = Vec::new();
                                for slot in &shared.probes {
                                    merged.append(&mut slot.lock().expect("probe slot"));
                                }
                                if let Some(p) = real.as_deref_mut() {
                                    deliver_probe_recs(p, &mut merged);
                                }
                            }
                            let min = shared
                                .mins
                                .iter()
                                .map(|m| m.load(Ordering::Relaxed))
                                .min()
                                .expect("k >= 1");
                            if min > until.0 {
                                shared.done.store(true, Ordering::Relaxed);
                            } else {
                                shared.start.store(min, Ordering::Relaxed);
                                shared
                                    .end
                                    .store(min.saturating_add(lookahead.0), Ordering::Relaxed);
                            }
                            shared.barrier.wait(); // C
                            if shared.done.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        let mut outs = vec![finish_worker(wk, None)];
                        outs.extend(
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("shard worker panicked")),
                        );
                        outs
                    })
                }
            }
            _ => {
                // Nothing pending at or before the horizon.
                queues
                    .into_iter()
                    .map(|queue| WorkerOut {
                        queue,
                        events: 0,
                        prof: None,
                        cal: crate::profile::CalendarStats::default(),
                        counters: None,
                    })
                    .collect()
            }
        };

        // Merge the shard calendars back into one (a fresh queue, as in
        // `restore`: the drained original's cursor has advanced past the
        // remaining events' slices). Harvest per-worker accounting.
        let mut fresh = EventQueue::new();
        let mut total = 0u64;
        for o in outs {
            total += o.events;
            if let Some(c) = &o.counters {
                crate::telemetry::preload(c);
            }
            if profiling {
                if let Some(p) = o.prof {
                    crate::profile::merge_run(p, &o.cal, &names);
                }
            }
            let mut q = o.queue;
            while let Some(ev) = q.pop() {
                fresh.restore_push(ev.time, ev.seq, ev.dst, ev.msg);
            }
        }
        fresh.set_next_seq(saved_next_seq);
        self.queue = fresh;
        self.events_processed += total;
        self.shard_plan = Some(plan);
        if let Some(p) = real {
            drop(crate::probe::install_thread_probe(p));
        }
    }
}

impl<M: 'static + SnapshotMessage> Engine<M> {
    /// Capture the engine's complete dynamic state: every node's fields,
    /// every per-node RNG stream, every pending calendar event with its
    /// `(time, seq)` ordering key, and the clock/dispatch counters.
    ///
    /// The snapshot deliberately excludes static topology: restoring
    /// happens into an engine freshly rebuilt by the same scenario code
    /// (same node types registered in the same order), which
    /// [`Engine::restore`] then overwrites with the captured dynamics.
    /// Fails if any registered node type does not implement
    /// [`Node::save_state`].
    pub fn snapshot(&self) -> Result<EngineSnapshot, String> {
        let mut nodes = Vec::with_capacity(self.locs.len());
        for (id, loc) in self.locs.iter().enumerate() {
            let arena = &self.arenas[loc.arena as usize];
            let mut w = KvWriter::new();
            arena
                .save_node(loc.slot, &mut w)
                .map_err(|e| format!("node {id}: {e}"))?;
            nodes.push(NodeSnapshot {
                id,
                type_name: arena.type_name().to_string(),
                rng: self.rngs[id].state(),
                state: w.finish(),
            });
        }
        let mut events = Vec::with_capacity(self.queue.len());
        self.queue.for_each_pending(|time, seq, dst, msg| {
            events.push(EventSnapshot {
                time,
                seq,
                dst: dst.0,
                msg: msg.encode(),
            });
        });
        // `for_each_pending` walks storage tiers, not delivery order;
        // canonicalize so the artifact (and diffs over it) are stable.
        events.sort_by_key(|e| (e.time, e.seq));
        Ok(EngineSnapshot {
            now: self.now,
            events_processed: self.events_processed,
            next_seq: self.queue.next_seq(),
            nodes,
            events,
        })
    }

    /// Overwrite this engine's dynamic state from `snap`.
    ///
    /// The engine must already hold the same topology the snapshot was
    /// taken from — same node count, same concrete type per id, in the
    /// same registration order — which the caller guarantees by re-running
    /// the scenario construction that produced the original engine.
    /// After restore, the engine's future event sequence is exactly the
    /// sequence the snapshotted engine would have produced.
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), String> {
        if snap.nodes.len() != self.locs.len() {
            return Err(format!(
                "checkpoint has {} nodes but the rebuilt engine has {} — \
                 scenario/config mismatch",
                snap.nodes.len(),
                self.locs.len()
            ));
        }
        for (id, ns) in snap.nodes.iter().enumerate() {
            if ns.id != id {
                return Err(format!("checkpoint node records out of order at {id}"));
            }
            let loc = self.locs[id];
            let arena = &mut self.arenas[loc.arena as usize];
            if arena.type_name() != ns.type_name {
                return Err(format!(
                    "node {id}: checkpoint type {} but engine has {}",
                    ns.type_name,
                    arena.type_name()
                ));
            }
            let mut r = KvReader::parse(&ns.state).map_err(|e| format!("node {id}: {e}"))?;
            arena
                .restore_node(loc.slot, &mut r)
                .map_err(|e| format!("node {id}: {e}"))?;
            self.rngs[id] = SmallRng::from_state(ns.rng);
        }
        let mut queue = EventQueue::new();
        for ev in &snap.events {
            if ev.dst >= self.locs.len() {
                return Err(format!(
                    "pending event targets node {} beyond the rebuilt topology",
                    ev.dst
                ));
            }
            let msg = M::decode(&ev.msg)
                .map_err(|e| format!("pending event at {:?} seq {}: {e}", ev.time, ev.seq))?;
            queue.restore_push(ev.time, ev.seq, NodeId(ev.dst), msg);
        }
        queue.set_next_seq(snap.next_seq);
        self.queue = queue;
        self.now = snap.now;
        self.events_processed = snap.events_processed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[derive(Default)]
    struct Collector {
        got: Vec<(SimTime, u32)>,
    }

    impl Node<u32> for Collector {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.got.push((ctx.now(), msg));
        }
    }

    struct Relay {
        dst: NodeId,
    }

    impl Node<u32> for Relay {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            ctx.send(self.dst, SimDuration::from_micros(10), msg + 1);
        }
    }

    #[test]
    fn delivers_in_time_order_with_delays() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        let r = e.add_node(Relay { dst: c });
        e.schedule(SimTime::from_micros(5), r, 100);
        e.schedule(SimTime::from_micros(1), c, 0);
        e.run_until(SimTime::from_millis(1));
        let got = &e.node::<Collector>(c).got;
        assert_eq!(
            got,
            &vec![
                (SimTime::from_micros(1), 0),
                (SimTime::from_micros(15), 101)
            ]
        );
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = Engine::<u32>::new(1);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_is_inclusive_of_boundary_events() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        e.schedule(SimTime::from_millis(10), c, 7);
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.node::<Collector>(c).got.len(), 1);
    }

    #[test]
    fn self_messages_loop() {
        struct Ticker {
            ticks: u32,
        }
        impl Node<u32> for Ticker {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.send_self(SimDuration::from_millis(1), 0);
                }
            }
        }
        let mut e = Engine::<u32>::new(1);
        let t = e.add_node(Ticker { ticks: 0 });
        e.schedule(SimTime::ZERO, t, 0);
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.node::<Ticker>(t).ticks, 5);
        assert_eq!(e.events_processed(), 5);
    }

    #[test]
    fn rng_streams_are_deterministic_and_independent() {
        struct R {
            draws: Vec<u64>,
        }
        impl Node<u32> for R {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                let v = ctx.rng().gen::<u64>();
                self.draws.push(v);
            }
        }
        let run = |seed| {
            let mut e = Engine::<u32>::new(seed);
            let a = e.add_node(R { draws: vec![] });
            let b = e.add_node(R { draws: vec![] });
            e.schedule(SimTime::ZERO, a, 0);
            e.schedule(SimTime::ZERO, b, 0);
            e.run_until(SimTime::from_secs(1));
            (e.node::<R>(a).draws.clone(), e.node::<R>(b).draws.clone())
        };
        let (a1, b1) = run(99);
        let (a2, b2) = run(99);
        let (a3, _) = run(100);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1, "streams must differ between nodes");
        assert_ne!(a1, a3, "streams must differ between seeds");
    }

    #[test]
    #[should_panic(expected = "node type mismatch")]
    fn downcast_mismatch_panics() {
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        let _ = e.node::<Relay>(c);
    }

    #[test]
    fn run_to_completion_respects_event_cap() {
        struct Forever;
        impl Node<u32> for Forever {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                ctx.send_self(SimDuration::from_micros(1), 0);
            }
        }
        let mut e = Engine::<u32>::new(1);
        let f = e.add_node(Forever);
        e.schedule(SimTime::ZERO, f, 0);
        assert_eq!(e.run_to_completion(1000), 1000);
    }

    #[test]
    fn trace_hook_sees_every_event_without_changing_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let run = |traced: bool| {
            let mut e = Engine::<u32>::new(7);
            let c = e.add_node(Collector::default());
            let r = e.add_node(Relay { dst: c });
            let seen: Rc<RefCell<Vec<(SimTime, NodeId, u32)>>> = Rc::default();
            if traced {
                let sink = Rc::clone(&seen);
                e.set_trace_hook(Box::new(move |t, dst, msg| {
                    sink.borrow_mut().push((t, dst, *msg));
                }));
            }
            e.schedule(SimTime::from_micros(1), r, 10);
            e.schedule(SimTime::from_micros(2), r, 20);
            e.run_until(SimTime::from_millis(1));
            let trace = seen.borrow().clone();
            (
                e.node::<Collector>(c).got.clone(),
                trace,
                e.events_processed(),
            )
        };

        let (got_plain, _, n_plain) = run(false);
        let (got_traced, trace, n_traced) = run(true);
        assert_eq!(got_plain, got_traced, "tracing must not perturb the run");
        assert_eq!(n_plain, n_traced);
        assert_eq!(trace.len(), n_traced as usize, "hook sees every dispatch");
        assert_eq!(
            trace[0],
            (SimTime::from_micros(1), NodeId(1), 10),
            "hook runs before delivery, with the delivered payload"
        );
    }

    #[test]
    fn clear_trace_hook_restores_untraced_dispatch() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut e = Engine::<u32>::new(3);
        let c = e.add_node(Collector::default());
        let seen: Rc<RefCell<u32>> = Rc::default();
        let sink = Rc::clone(&seen);
        e.set_trace_hook(Box::new(move |_, _, _| *sink.borrow_mut() += 1));
        e.schedule(SimTime::from_micros(1), c, 0);
        e.run_until(SimTime::from_micros(1));
        e.clear_trace_hook();
        e.schedule(SimTime::from_micros(2), c, 1);
        e.run_until(SimTime::from_micros(2));
        assert_eq!(*seen.borrow(), 1, "hook only observes while attached");
        assert_eq!(e.node::<Collector>(c).got.len(), 2);
    }

    #[test]
    fn quiet_until_sees_the_next_pending_event() {
        struct Probe {
            seen: Vec<SimTime>,
        }
        impl Node<u32> for Probe {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                self.seen.push(ctx.quiet_until());
            }
        }
        let mut e = Engine::<u32>::new(1);
        let p = e.add_node(Probe { seen: vec![] });
        e.schedule(SimTime::from_micros(1), p, 0);
        e.schedule(SimTime::from_micros(9), p, 1);
        e.run_until(SimTime::from_millis(1));
        assert_eq!(
            e.node::<Probe>(p).seen,
            vec![SimTime::from_micros(9), SimTime::MAX],
            "first dispatch sees the 9µs event pending; last sees an empty calendar"
        );
    }

    #[test]
    fn coalesced_work_counts_as_events() {
        struct Batcher;
        impl Node<u32> for Batcher {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                ctx.note_coalesced(4);
            }
        }
        let before = thread_events_dispatched();
        let mut e = Engine::<u32>::new(1);
        let b = e.add_node(Batcher);
        e.schedule(SimTime::from_micros(1), b, 0);
        e.schedule(SimTime::from_micros(2), b, 0);
        assert!(e.step());
        e.run_until(SimTime::from_millis(1));
        assert_eq!(e.events_processed(), 10, "2 dispatches + 2×4 coalesced");
        assert_eq!(thread_events_dispatched() - before, 10);
    }

    struct PastScheduler;
    impl Node<u32> for PastScheduler {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            if msg == 0 {
                let id = ctx.self_id();
                ctx.send_at(id, SimTime::ZERO, 1); // 1µs in the past
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn send_at_past_asserts_in_debug() {
        let mut e = Engine::<u32>::new(1);
        let p = e.add_node(PastScheduler);
        e.schedule(SimTime::from_micros(1), p, 0);
        e.run_until(SimTime::from_millis(1));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn send_at_past_clamps_and_counts_in_release() {
        let m = crate::telemetry::begin_run();
        let mut e = Engine::<u32>::new(1);
        let p = e.add_node(PastScheduler);
        e.schedule(SimTime::from_micros(1), p, 0);
        e.run_until(SimTime::from_millis(1));
        assert_eq!(
            e.events_processed(),
            2,
            "the clamped message is delivered (at `now`), not lost"
        );
        assert_eq!(e.now(), SimTime::from_millis(1));
        assert_eq!(m.finish().schedule_past, 1);
    }

    /// Ticks itself every `period` and cancels the shared token at tick
    /// `cancel_at` — cancellation requested *from inside* the run, the
    /// way a server's DELETE handler flips the flag mid-job.
    struct CancellingTicker {
        ticks: u64,
        cancel_at: u64,
        period: SimDuration,
        token: crate::cancel::CancelToken,
    }
    impl Node<u32> for CancellingTicker {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
            self.ticks += 1;
            if self.ticks == self.cancel_at {
                self.token.cancel();
            }
            ctx.send_self(self.period, 0);
        }
    }

    #[test]
    fn cancel_token_stops_the_run_within_one_calendar_slice() {
        // One event per µs: a calendar slice (8192 ns) holds at most 9
        // of them, so a cancel must bite within 9 further dispatches.
        let token = crate::cancel::CancelToken::new();
        let _g = crate::cancel::CancelGuard::new(token.clone());
        let mut e = Engine::<u32>::new(1);
        let t = e.add_node(CancellingTicker {
            ticks: 0,
            cancel_at: 1000,
            period: SimDuration::from_micros(1),
            token,
        });
        e.schedule(SimTime::ZERO, t, 0);
        let horizon = SimTime::from_secs(1);
        e.run_until(horizon);
        assert!(e.cancelled(), "token must mark the engine cancelled");
        let ticks = e.node::<CancellingTicker>(t).ticks;
        let per_slice = crate::event::SLICE_NS / 1_000 + 1;
        assert!(
            (1000..=1000 + per_slice).contains(&ticks),
            "cancel latency bounded by one slice: {ticks} ticks"
        );
        assert!(
            e.now() < horizon,
            "a cancelled run's clock stays at the last event, got {:?}",
            e.now()
        );
    }

    #[test]
    fn already_cancelled_token_stops_before_the_first_pop() {
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let _g = crate::cancel::CancelGuard::new(token);
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        e.schedule(SimTime::from_micros(1), c, 7);
        e.run_until(SimTime::from_millis(1));
        assert!(e.cancelled());
        assert_eq!(e.events_processed(), 0, "no event may run after cancel");
        assert_eq!(e.pending_events(), 1, "the rejected event stays queued");
        assert_eq!(e.now(), SimTime::ZERO);
    }

    #[test]
    fn armed_but_uncancelled_token_changes_nothing() {
        let run = |armed: bool| {
            let _g =
                armed.then(|| crate::cancel::CancelGuard::new(crate::cancel::CancelToken::new()));
            let mut e = Engine::<u32>::new(5);
            let c = e.add_node(Collector::default());
            let r = e.add_node(Relay { dst: c });
            for i in 0..50u64 {
                e.schedule(SimTime::from_micros(i * 7), r, i as u32);
            }
            e.run_until(SimTime::from_millis(1));
            assert!(!e.cancelled());
            (e.node::<Collector>(c).got.clone(), e.events_processed())
        };
        assert_eq!(run(false), run(true), "armed token must not perturb runs");
    }

    #[test]
    fn cancelled_instrumented_run_stops_and_keeps_the_trace_consistent() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let token = crate::cancel::CancelToken::new();
        let _g = crate::cancel::CancelGuard::new(token.clone());
        let mut e = Engine::<u32>::new(1);
        let t = e.add_node(CancellingTicker {
            ticks: 0,
            cancel_at: 100,
            period: SimDuration::from_micros(1),
            token,
        });
        let seen: Rc<RefCell<u64>> = Rc::default();
        let sink = Rc::clone(&seen);
        e.set_trace_hook(Box::new(move |_, _, _| *sink.borrow_mut() += 1));
        e.schedule(SimTime::ZERO, t, 0);
        e.run_until(SimTime::from_secs(1));
        assert!(e.cancelled());
        // Instrumented loop checks per event: exactly the cancelling
        // dispatch runs last, and the hook saw every dispatched event.
        assert_eq!(e.node::<CancellingTicker>(t).ticks, 100);
        assert_eq!(*seen.borrow(), e.events_processed());
    }

    #[test]
    fn interleaved_types_get_dense_ids_and_grouped_arenas() {
        let mut e = Engine::<u32>::new(1);
        let c0 = e.add_node(Collector::default());
        let r0 = e.add_node(Relay { dst: c0 });
        let c1 = e.add_node(Collector::default());
        let r1 = e.add_node(Relay { dst: c1 });
        let c2 = e.add_node(Collector::default());
        assert_eq!(
            (c0, r0, c1, r1, c2),
            (NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)),
            "ids stay dense and in registration order across type interleaving"
        );
        let stats = e.arena_stats();
        assert_eq!(stats.len(), 2, "one arena per concrete type");
        assert_eq!(stats[0].nodes, 3, "collectors grouped, registration order");
        assert_eq!(stats[1].nodes, 2);
        assert_eq!(e.node_count(), 5);
        // Every id still resolves to its own node through the typed lookup.
        e.schedule(SimTime::from_micros(1), c2, 42);
        e.run_until(SimTime::from_millis(1));
        assert_eq!(e.node::<Collector>(c2).got.len(), 1);
        assert_eq!(e.node::<Collector>(c0).got.len(), 0);
        assert_eq!(e.node::<Collector>(c1).got.len(), 0);
    }

    #[test]
    fn nodes_footprint_counts_arena_storage() {
        let mut e = Engine::<u32>::new(1);
        for _ in 0..100 {
            e.add_node(Collector::default());
        }
        let fp = e.nodes_footprint_bytes();
        assert!(
            fp >= 100 * std::mem::size_of::<Collector>(),
            "footprint covers at least the stored nodes ({fp} bytes)"
        );
        let stats = e.arena_stats();
        assert_eq!(stats.iter().map(|s| s.nodes).sum::<usize>(), 100);
        assert!(stats[0].type_name.contains("Collector"));
    }

    #[test]
    fn profiled_run_is_identical_and_attributes_all_wall_time() {
        let run = |profiled: bool| {
            let marker = profiled.then(crate::profile::begin_profile);
            let mut e = Engine::<u32>::new(7);
            let c = e.add_node(Collector::default());
            let r = e.add_node(Relay { dst: c });
            e.set_event_classifier(|m| if *m % 2 == 0 { "even" } else { "odd" });
            for i in 0..50 {
                e.schedule(SimTime::from_micros(i), r, i as u32);
            }
            // A far-future event exercises the overflow/promote phases.
            e.schedule(SimTime::from_millis(200), c, 999);
            e.run_until(SimTime::from_secs(1));
            (
                e.node::<Collector>(c).got.clone(),
                e.events_processed(),
                marker.map(ProfileMarker::finish),
            )
        };
        let (got_plain, n_plain, _) = run(false);
        let (got_prof, n_prof, report) = run(true);
        assert_eq!(got_plain, got_prof, "profiling must not perturb the run");
        assert_eq!(n_plain, n_prof);
        let r = report.unwrap();
        assert_eq!(r.dispatches, 101, "50 relays + 50 deliveries + 1 far");
        assert_eq!(r.nodes.len(), 2, "one bucket per concrete node type");
        assert!(r.nodes.iter().any(|e| e.name.contains("Collector")));
        assert_eq!(r.nodes.iter().map(|e| e.events).sum::<u64>(), 101);
        let kinds: Vec<&str> = r.kinds.iter().map(|e| e.name.as_str()).collect();
        assert!(kinds.contains(&"even") && kinds.contains(&"odd"));
        // Push counters only see in-run sends (pre-run `schedule` calls
        // happen before the loop enables queue profiling): the 50 relay
        // forwards land in the current slice or a wheel bucket.
        assert_eq!(r.calendar.active_inserts + r.calendar.wheel_pushes, 50);
        assert!(r.calendar.promoted >= 1, "the 200ms event promotes in-run");
        assert!(r.calendar.advances > 0);
        assert!(r.wall_ns > 0);
        // The attribution partition: nodes + calendar phases cover the
        // loop wall time (only un-sub-attributed slack inside `advance`
        // is lost, far below 5%).
        let attributed = r.attributed_ns();
        assert!(
            attributed <= r.wall_ns && attributed as f64 >= r.wall_ns as f64 * 0.90,
            "attributed {attributed} ns vs wall {} ns",
            r.wall_ns
        );
    }

    #[test]
    fn engine_profile_switch_collects_without_a_bracket() {
        let _ = crate::profile::take_report(); // reset the thread collector
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        e.profile(true);
        e.schedule(SimTime::from_micros(1), c, 0);
        e.run_until(SimTime::from_millis(1));
        let r = crate::profile::take_report();
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.kinds[0].name, "event", "no classifier → fallback kind");
        assert!(!crate::profile::enabled());
    }

    use crate::profile::ProfileMarker;

    /// A node with RNG use, accumulated state and self-scheduling across
    /// wildly different timer horizons — the shape checkpointing must
    /// capture exactly.
    struct Mixer {
        count: u32,
        draws: Vec<u64>,
        horizon_ns: u64,
    }

    impl Node<u32> for Mixer {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.count += 1;
            let v = ctx.rng().gen::<u64>();
            self.draws.push(v);
            if self.count < 40 {
                // Alternate near rescheduling with a far-future horizon so
                // pending events live in the active run, the wheel and the
                // far slab at any given instant.
                let delay = if self.count.is_multiple_of(3) {
                    SimDuration::from_nanos(self.horizon_ns)
                } else {
                    SimDuration::from_micros(1 + (v % 50))
                };
                ctx.send_self(delay, msg + 1);
            }
        }

        fn save_state(&self, w: &mut KvWriter) -> Result<(), String> {
            w.u64("count", self.count as u64);
            w.u64_list("draws", &self.draws);
            Ok(())
        }

        fn restore_state(&mut self, r: &mut KvReader) -> Result<(), String> {
            self.count = r.u64("count")? as u32;
            self.draws = r.u64_list("draws")?;
            Ok(())
        }
    }

    #[test]
    fn run_until_capped_stops_at_the_cap_without_advancing_the_clock() {
        struct Forever;
        impl Node<u32> for Forever {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _msg: u32) {
                ctx.send_self(SimDuration::from_micros(1), 0);
            }
        }
        let mut e = Engine::<u32>::new(1);
        let f = e.add_node(Forever);
        e.schedule(SimTime::ZERO, f, 0);
        assert_eq!(e.run_until_capped(SimTime::from_secs(1), 10), 10);
        assert_eq!(
            e.now(),
            SimTime::from_micros(9),
            "cap-limited stop leaves the clock at the last dispatched event"
        );
        // Same bound again: the time limit now ends the call and the
        // clock advances to it.
        let done = e.run_until_capped(SimTime::from_micros(20), u64::MAX);
        assert_eq!(done, 11);
        assert_eq!(e.now(), SimTime::from_micros(20));
    }

    #[test]
    fn snapshot_restores_into_a_rebuilt_engine_byte_identically() {
        let build = |seed| {
            let mut e = Engine::<u32>::new(seed);
            let a = e.add_node(Mixer {
                count: 0,
                draws: vec![],
                horizon_ns: 100_000_013, // far beyond the wheel window → far slab
            });
            let b = e.add_node(Mixer {
                count: 0,
                draws: vec![],
                horizon_ns: 70_000,
            });
            e.schedule(SimTime::ZERO, a, 0);
            e.schedule(SimTime(1), b, 100);
            (e, a, b)
        };
        let finish = |e: &mut Engine<u32>, a: NodeId, b: NodeId| {
            e.run_to_completion(u64::MAX);
            (
                e.node::<Mixer>(a).draws.clone(),
                e.node::<Mixer>(b).draws.clone(),
                e.events_processed(),
                e.now(),
            )
        };

        // Uninterrupted reference run.
        let (mut reference, a, b) = build(42);
        let want = finish(&mut reference, a, b);

        // Interrupted run: stop mid-flight (by event count, so the stop
        // lands at an arbitrary instant), snapshot, restore into a fresh
        // engine, finish there.
        let (mut first, ..) = build(42);
        first.run_until_capped(SimTime::MAX, 25);
        let snap = first.snapshot().expect("snapshot");
        assert!(
            !snap.events.is_empty(),
            "mid-run snapshot must carry pending events"
        );
        let (mut resumed, ra, rb) = build(42);
        resumed.restore(&snap).expect("restore");
        assert_eq!(resumed.events_processed(), first.events_processed());
        let got = finish(&mut resumed, ra, rb);
        assert_eq!(got, want, "resumed run must match the uninterrupted run");
    }

    #[test]
    fn restore_rejects_topology_mismatches() {
        let mut e = Engine::<u32>::new(1);
        e.add_node(Mixer {
            count: 0,
            draws: vec![],
            horizon_ns: 1,
        });
        let snap = e.snapshot().unwrap();

        let mut fewer = Engine::<u32>::new(1);
        let err = fewer.restore(&snap).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");

        let mut other = Engine::<u32>::new(1);
        other.add_node(Collector::default());
        let err = other.restore(&snap).unwrap_err();
        assert!(err.contains("checkpoint type"), "{err}");
    }

    #[test]
    fn snapshot_fails_loudly_for_uncheckpointable_nodes() {
        let mut e = Engine::<u32>::new(1);
        e.add_node(Collector::default());
        let err = e.snapshot().unwrap_err();
        assert!(err.contains("does not support checkpointing"), "{err}");
    }

    #[test]
    fn thread_counter_tracks_dispatches() {
        let before = thread_events_dispatched();
        let mut e = Engine::<u32>::new(1);
        let c = e.add_node(Collector::default());
        for i in 0..10 {
            e.schedule(SimTime::from_micros(i), c, i as u32);
        }
        e.run_until(SimTime::from_millis(1));
        e.schedule(SimTime::from_millis(2), c, 99);
        assert!(e.step());
        assert_eq!(thread_events_dispatched() - before, 11);
    }
}
