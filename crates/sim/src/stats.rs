//! Measurement primitives used by every experiment.
//!
//! * [`TimeSeries`] — explicit `(t, v)` samples, e.g. a MACR trace.
//! * [`TimeWeighted`] — mean/max of a piecewise-constant signal such as a
//!   queue length, integrated exactly between updates.
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Histogram`] — fixed-width bins with exact mean and approximate
//!   quantiles, e.g. for packet delays.
//! * [`RunningStats`] — streaming count/sum/min/max, the constant-memory
//!   accumulator behind single-pass trace analysis.
//! * [`IntervalSampler`] — tumbling-window [`RunningStats`] over a
//!   timestamped scalar stream.

use crate::snapshot::{KvReader, KvWriter};
use crate::time::SimTime;

/// A recorded sequence of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample at time `t`. Times must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        let tf = t.as_secs_f64();
        debug_assert!(
            self.times.last().is_none_or(|&last| tf >= last),
            "TimeSeries times must be non-decreasing"
        );
        self.times.push(tf);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times, in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Iterate over `(t_seconds, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Arithmetic mean of the sample values (unweighted by time).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Largest sample value, or `None` for an empty series.
    pub fn try_max(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(
                self.values
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max),
            )
        }
    }

    /// Largest sample value, or 0 for an empty series. Correct for
    /// all-negative series; use [`TimeSeries::try_max`] when the empty
    /// case must be distinguishable from a genuine 0.
    pub fn max(&self) -> f64 {
        self.try_max().unwrap_or(0.0)
    }

    /// Smallest sample value, or `None` for an empty series.
    pub fn try_min(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().copied().fold(f64::INFINITY, f64::min))
        }
    }

    /// Smallest sample value, or 0 for an empty series (see
    /// [`TimeSeries::try_min`]).
    pub fn min(&self) -> f64 {
        self.try_min().unwrap_or(0.0)
    }

    /// Mean of samples with `t >= from` seconds (unweighted).
    pub fn mean_after(&self, from: f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= from {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Largest sample value with `t >= from` seconds, or `None` when no
    /// sample falls in the window.
    pub fn try_max_after(&self, from: f64) -> Option<f64> {
        self.iter()
            .filter(|&(t, _)| t >= from)
            .map(|(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Largest sample value with `t >= from` seconds, or 0 when no sample
    /// falls in the window. Correct for all-negative series; use
    /// [`TimeSeries::try_max_after`] to distinguish the empty window.
    pub fn max_after(&self, from: f64) -> f64 {
        self.try_max_after(from).unwrap_or(0.0)
    }

    /// Value of the series at time `t` (seconds), treating it as a
    /// piecewise-constant (sample-and-hold) signal. Returns `None` before
    /// the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        match self.times.partition_point(|&x| x <= t) {
            0 => None,
            i => Some(self.values[i - 1]),
        }
    }

    /// Serialize the recorded samples for a checkpoint (exact
    /// round-trip). Callers namespace via [`KvWriter::scope`].
    pub fn save(&self, w: &mut KvWriter) {
        w.f64_list("times", &self.times);
        w.f64_list("values", &self.values);
    }

    /// Overwrite this series from a [`TimeSeries::save`] record.
    pub fn restore(&mut self, r: &mut KvReader) -> Result<(), String> {
        let times = r.f64_list("times")?;
        let values = r.f64_list("values")?;
        if times.len() != values.len() {
            return Err(format!(
                "time series length mismatch: {} times vs {} values",
                times.len(),
                values.len()
            ));
        }
        self.times = times;
        self.values = values;
        Ok(())
    }
}

/// Exact time-weighted statistics of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the integral of
/// the signal between updates is accumulated exactly. Typical use: queue
/// occupancy.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    max: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// A signal that is 0 until the first [`TimeWeighted::set`].
    pub fn new() -> Self {
        TimeWeighted {
            last_t: SimTime::ZERO,
            last_v: 0.0,
            integral: 0.0,
            max: 0.0,
            started: false,
        }
    }

    /// Record that the signal takes value `v` from time `t` on.
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "TimeWeighted updates must move forward");
        if self.started {
            self.integral += self.last_v * (t - self.last_t).as_secs_f64();
        }
        self.started = true;
        self.last_t = t;
        self.last_v = v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Largest value the signal has taken.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[0, end]`.
    pub fn mean_until(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        let mut integral = self.integral;
        if self.started && end > self.last_t {
            integral += self.last_v * (end - self.last_t).as_secs_f64();
        }
        integral / end.as_secs_f64()
    }

    /// Serialize the accumulator for a checkpoint (exact round-trip).
    pub fn save(&self, w: &mut KvWriter) {
        w.u64("last_t", self.last_t.0);
        w.f64("last_v", self.last_v);
        w.f64("integral", self.integral);
        w.f64("max", self.max);
        w.bool("started", self.started);
    }

    /// Overwrite this accumulator from a [`TimeWeighted::save`] record.
    pub fn restore(&mut self, r: &mut KvReader) -> Result<(), String> {
        self.last_t = SimTime(r.u64("last_t")?);
        self.last_v = r.f64("last_v")?;
        self.integral = r.f64("integral")?;
        self.max = r.f64("max")?;
        self.started = r.bool("started")?;
        Ok(())
    }
}

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A fixed-bin histogram with exact count/sum and approximate quantiles.
///
/// Bin storage is allocated lazily: an empty histogram holds no bin
/// memory at all, and `record` grows the bin vector only as far as the
/// highest bin actually hit. A million idle histograms (one per session
/// at metro scale) therefore cost a few hundred bytes each instead of
/// `nbins * 8` — the eager `vec![0; 10_000]` here used to dominate the
/// whole simulation's resident set at 10⁵+ sessions.
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    /// Logical bin count: values at or above `nbins * bin_width`
    /// overflow. `bins.len() <= nbins`; trailing zero bins are not
    /// stored.
    nbins: usize,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// A histogram of `nbins` bins of width `bin_width`; values at or above
    /// `nbins * bin_width` land in an overflow bin. Allocates nothing
    /// until the first `record`.
    pub fn new(bin_width: f64, nbins: usize) -> Self {
        assert!(bin_width > 0.0 && nbins > 0);
        Histogram {
            bin_width,
            nbins,
            bins: Vec::new(),
            overflow: 0,
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Record one observation `v >= 0`.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v >= 0.0, "histogram values must be non-negative");
        let idx = (v / self.bin_width) as usize;
        if idx < self.nbins {
            if idx >= self.bins.len() {
                self.bins.resize(idx + 1, 0);
            }
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The width of each regular bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Per-bin counts (values in `[i*w, (i+1)*w)` land in bin `i`).
    /// May be shorter than [`Histogram::nbins`]: trailing bins that were
    /// never hit are not stored and count as zero.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Logical bin count (the `nbins` passed at construction) — the
    /// overflow threshold is `nbins() * bin_width()` regardless of how
    /// many bins are materialized in [`Histogram::bins`].
    pub fn nbins(&self) -> usize {
        self.nbins
    }

    /// Observations at or above `nbins() * bin_width()`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Serialize the observations for a checkpoint. Bin geometry
    /// (`bin_width`, `nbins`) is static configuration and not written.
    pub fn save(&self, w: &mut KvWriter) {
        w.u64_list("bins", &self.bins);
        w.u64("overflow", self.overflow);
        w.u64("count", self.count);
        w.f64("sum", self.sum);
        w.f64("max", self.max);
    }

    /// Overwrite this histogram's observations from a
    /// [`Histogram::save`] record. The histogram must have been rebuilt
    /// with the original bin geometry.
    pub fn restore(&mut self, r: &mut KvReader) -> Result<(), String> {
        let bins = r.u64_list("bins")?;
        if bins.len() > self.nbins {
            return Err(format!(
                "histogram has {} bins but geometry allows {}",
                bins.len(),
                self.nbins
            ));
        }
        self.bins = bins;
        self.overflow = r.u64("overflow")?;
        self.count = r.u64("count")?;
        self.sum = r.f64("sum")?;
        self.max = r.f64("max")?;
        Ok(())
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`), resolved to bin width.
    /// Returns the upper edge of the bin containing the quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (i as f64 + 1.0) * self.bin_width;
            }
        }
        self.max
    }
}

/// Streaming count/sum/min/max of a scalar stream — the constant-memory
/// accumulator the trace analyzer builds everything on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Peak-to-peak range (`max - min`; 0 when fewer than two samples).
    pub fn range(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Tumbling-window statistics of a timestamped scalar stream.
///
/// Samples at time `t` land in window `floor(t / width)`. Windows close
/// as soon as a later sample arrives; closed windows accumulate until
/// drained with [`IntervalSampler::drain_closed`], and [`IntervalSampler::finish`]
/// closes the in-progress window. Windows with no samples are never
/// materialized, so memory is bounded by the number of *occupied*
/// windows still undrained.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    width: f64,
    current: Option<(u64, RunningStats)>,
    closed: Vec<(u64, RunningStats)>,
}

impl IntervalSampler {
    /// A sampler with tumbling windows of `width` seconds.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "window width must be positive");
        IntervalSampler {
            width,
            current: None,
            closed: Vec::new(),
        }
    }

    /// The configured window width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The window index covering time `t` (seconds).
    pub fn index_of(&self, t: f64) -> u64 {
        (t / self.width).max(0.0) as u64
    }

    /// Fold in one sample at time `t` seconds. Times must be
    /// non-decreasing (simulation order).
    pub fn push(&mut self, t: f64, v: f64) {
        let idx = self.index_of(t);
        match &mut self.current {
            Some((cur, stats)) if *cur == idx => stats.push(v),
            Some((cur, stats)) => {
                debug_assert!(idx > *cur, "IntervalSampler times must be non-decreasing");
                self.closed.push((*cur, *stats));
                self.current = Some((idx, {
                    let mut s = RunningStats::new();
                    s.push(v);
                    s
                }));
            }
            None => {
                let mut s = RunningStats::new();
                s.push(v);
                self.current = Some((idx, s));
            }
        }
    }

    /// Take the windows closed so far, oldest first.
    pub fn drain_closed(&mut self) -> Vec<(u64, RunningStats)> {
        std::mem::take(&mut self.closed)
    }

    /// Close the in-progress window and return every remaining window,
    /// oldest first.
    pub fn finish(mut self) -> Vec<(u64, RunningStats)> {
        if let Some(cur) = self.current.take() {
            self.closed.push(cur);
        }
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_basics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1), 10.0);
        ts.push(SimTime::from_millis(2), 20.0);
        ts.push(SimTime::from_millis(3), 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), 20.0);
        assert_eq!(ts.max(), 30.0);
        assert_eq!(ts.min(), 10.0);
        assert_eq!(ts.last(), Some(30.0));
    }

    #[test]
    fn time_series_extrema_all_negative() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(1), -5.0);
        ts.push(SimTime::from_millis(2), -2.0);
        ts.push(SimTime::from_millis(3), -9.0);
        assert_eq!(ts.max(), -2.0, "max must not clamp at 0");
        assert_eq!(ts.min(), -9.0);
        assert_eq!(ts.max_after(0.002), -2.0);
        assert_eq!(ts.try_max(), Some(-2.0));
        assert_eq!(ts.try_min(), Some(-9.0));
        assert_eq!(ts.try_max_after(0.0025), Some(-9.0));
    }

    #[test]
    fn time_series_extrema_empty_is_explicit() {
        let ts = TimeSeries::new();
        assert_eq!(ts.try_max(), None);
        assert_eq!(ts.try_min(), None);
        assert_eq!(ts.try_max_after(0.0), None);
        // The f64 variants keep the documented 0 fallback.
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.min(), 0.0);
        assert_eq!(ts.max_after(0.0), 0.0);
    }

    #[test]
    fn time_series_mean_after_window() {
        let mut ts = TimeSeries::new();
        for i in 1..=10 {
            ts.push(SimTime::from_millis(i), i as f64);
        }
        assert_eq!(ts.mean_after(0.006), (6.0 + 7.0 + 8.0 + 9.0 + 10.0) / 5.0);
        assert_eq!(ts.max_after(0.02), 0.0);
    }

    #[test]
    fn time_series_value_at_sample_and_hold() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(10), 1.0);
        ts.push(SimTime::from_millis(20), 2.0);
        assert_eq!(ts.value_at(0.005), None);
        assert_eq!(ts.value_at(0.010), Some(1.0));
        assert_eq!(ts.value_at(0.015), Some(1.0));
        assert_eq!(ts.value_at(0.020), Some(2.0));
        assert_eq!(ts.value_at(99.0), Some(2.0));
    }

    #[test]
    fn time_weighted_integrates_exactly() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(1), 10.0); // 0 over [0,1)
        tw.set(SimTime::from_secs(3), 0.0); // 10 over [1,3)
                                            // mean over [0,4] = (0*1 + 10*2 + 0*1)/4 = 5
        assert!((tw.mean_until(SimTime::from_secs(4)) - 5.0).abs() < 1e-12);
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_mean_with_open_tail() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 4.0);
        // signal constant at 4, mean over any horizon is 4
        assert!((tw.mean_until(SimTime::from_secs(10)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_mean_max_quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for v in [0.5, 1.5, 2.5, 3.5, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 21.6).abs() < 1e-9);
        assert_eq!(h.max(), 100.0);
        // median of 5 values: 3rd smallest (2.5) -> bin upper edge 3.0
        assert_eq!(h.quantile(0.5), 3.0);
        // the 100.0 overflows: top quantile returns exact max
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0.0);
    }

    #[test]
    fn histogram_exposes_raw_bins() {
        let mut h = Histogram::new(1.0, 3);
        for v in [0.5, 1.5, 1.6, 7.0] {
            h.record(v);
        }
        assert_eq!(h.bin_width(), 1.0);
        // Lazy storage: bin 2 was never hit, so only the prefix exists.
        assert_eq!(h.bins(), &[1, 2]);
        assert_eq!(h.nbins(), 3);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_bins_are_lazily_allocated() {
        // A fresh histogram must hold no bin storage at all — at metro
        // scale one histogram per session, eager `vec![0; nbins]` was
        // ~80 KB/session and dominated the resident set.
        let h = Histogram::new(0.1, 10_000);
        assert!(h.bins().is_empty());
        assert_eq!(h.nbins(), 10_000);
        let mut h = Histogram::new(0.1, 10_000);
        h.record(0.25); // bin 2: grows storage to exactly 3 bins
        assert_eq!(h.bins(), &[0, 0, 1]);
        // Overflow still keys off the logical bin count, not storage.
        h.record(1_000.5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn running_stats_folds_extremes_and_mean() {
        let mut s = RunningStats::new();
        assert!(s.mean().is_nan() && s.min().is_nan() && s.max().is_nan());
        assert_eq!(s.range(), 0.0);
        for v in [3.0, -1.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 4.0);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.range(), 4.0);
        assert!((s.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interval_sampler_tumbles_windows() {
        let mut w = IntervalSampler::new(0.010);
        w.push(0.001, 1.0);
        w.push(0.009, 3.0);
        assert!(w.drain_closed().is_empty(), "window 0 still open");
        w.push(0.010, 5.0); // opens window 1, closes window 0
        w.push(0.035, 7.0); // opens window 3 (window 2 is empty: skipped)
        let closed = w.drain_closed();
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].0, 0);
        assert_eq!(closed[0].1.count(), 2);
        assert_eq!(closed[0].1.max(), 3.0);
        assert_eq!(closed[1].0, 1);
        assert_eq!(closed[1].1.sum(), 5.0);
        let rest = w.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, 3);
        assert_eq!(rest[0].1.mean(), 7.0);
    }
}
