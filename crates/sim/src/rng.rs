//! Seed derivation for independent deterministic RNG streams.
//!
//! Each node (and each scenario-level traffic model) gets its own stream
//! derived from a master seed via SplitMix64 finalization. Streams are
//! statistically independent for practical purposes, and — crucially —
//! adding a node never shifts the random sequence observed by another node,
//! so experiments stay comparable when topologies are extended.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of stream `stream` from `master`.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Two rounds of mixing decorrelate adjacent stream indices.
    splitmix64(splitmix64(master) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// A convenience generator of derived seeds, handed out in order.
pub struct SeedStream {
    master: u64,
    next: u64,
}

impl SeedStream {
    /// A stream of seeds derived from `master`.
    pub fn new(master: u64) -> Self {
        SeedStream { master, next: 0 }
    }

    /// The next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = derive_seed(self.master, self.next);
        self.next += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
    }

    #[test]
    fn streams_do_not_collide_for_many_indices() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(123, i)), "collision at {i}");
        }
    }

    #[test]
    fn seed_stream_hands_out_derived_seeds_in_order() {
        let mut s = SeedStream::new(5);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_eq!(a, derive_seed(5, 0));
        assert_eq!(b, derive_seed(5, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn zero_master_is_fine() {
        // SplitMix64 must not map the all-zero input to weak output chains.
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
