//! Closed-form fixed points of the Phantom dynamics on a single link.
//!
//! Used by the tests and the experiment harness to compute what the
//! simulation *should* converge to. For arbitrary topologies use
//! `phantom_metrics::phantom_prediction` (weighted max-min with one
//! phantom session per link).

/// MACR fixed point: `C / (1 + n·u)` for `n` greedy sessions on a link of
/// capacity `c` with utilization factor `u`.
pub fn single_link_macr(c: f64, n: usize, u: f64) -> f64 {
    assert!(c >= 0.0 && u > 0.0);
    c / (1.0 + n as f64 * u)
}

/// Per-session rate fixed point: `u·C / (1 + n·u)`.
pub fn single_link_rate(c: f64, n: usize, u: f64) -> f64 {
    u * single_link_macr(c, n, u)
}

/// Link utilization at the fixed point: `n·u / (1 + n·u)`.
pub fn single_link_utilization(n: usize, u: f64) -> f64 {
    assert!(u > 0.0);
    let nu = n as f64 * u;
    nu / (1.0 + nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computation() {
        // u=5, n=2, C=150: MACR = 150/11, rate = 750/11, util = 10/11.
        assert!((single_link_macr(150.0, 2, 5.0) - 150.0 / 11.0).abs() < 1e-12);
        assert!((single_link_rate(150.0, 2, 5.0) - 750.0 / 11.0).abs() < 1e-12);
        assert!((single_link_utilization(2, 5.0) - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_grows_with_sessions_and_u() {
        assert!(single_link_utilization(1, 5.0) < single_link_utilization(2, 5.0));
        assert!(single_link_utilization(2, 5.0) < single_link_utilization(2, 10.0));
        assert!(single_link_utilization(50, 5.0) > 0.99);
    }

    #[test]
    fn conservation_rates_plus_macr_equal_capacity() {
        // n sessions at the session rate plus the phantom at MACR fill the
        // link exactly.
        for n in 1..10 {
            let c = 150.0;
            let total = n as f64 * single_link_rate(c, n, 5.0) + single_link_macr(c, n, 5.0);
            assert!((total - c).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_sessions_means_phantom_owns_the_link() {
        assert_eq!(single_link_macr(100.0, 0, 5.0), 100.0);
        assert_eq!(single_link_utilization(0, 5.0), 0.0);
    }
}
