//! The Phantom rate allocator (explicit-rate mode).
//!
//! Plugs the [`MacrEstimator`] into a switch output port: every
//! measurement interval it feeds the estimator the measured residual
//! bandwidth, and every backward RM cell is stamped with
//! `ER := min(ER, u × MACR)`.

use crate::config::{PhantomConfig, ResidualMode};
use crate::macr::MacrEstimator;
use phantom_atm::allocator::{AllocatorTelemetry, PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// Phantom in explicit-rate mode — the paper's primary mechanism.
#[derive(Clone, Copy, Debug)]
pub struct PhantomAllocator {
    cfg: PhantomConfig,
    est: Option<MacrEstimator>,
    capacity: f64,
}

impl PhantomAllocator {
    /// An allocator with the given configuration. The estimator
    /// initializes lazily on the first measurement interval, when the
    /// port's capacity is first observed.
    pub fn new(cfg: PhantomConfig) -> Self {
        cfg.validate().expect("invalid Phantom configuration");
        PhantomAllocator {
            cfg,
            est: None,
            capacity: 0.0,
        }
    }

    /// The paper's default configuration (u = 5).
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper())
    }

    /// Current MACR (0 before the first interval).
    pub fn macr(&self) -> f64 {
        self.est.map(|e| e.macr()).unwrap_or(0.0)
    }

    /// The configured utilization factor.
    pub fn utilization_factor(&self) -> f64 {
        self.cfg.utilization_factor
    }

    /// The rate limit currently offered to sessions (`u × MACR`).
    /// Infinity before the first measurement interval, so sessions are
    /// not spuriously throttled at startup.
    pub fn allowed_rate(&self) -> f64 {
        match &self.est {
            Some(e) => self.cfg.utilization_factor * e.macr(),
            None => f64::INFINITY,
        }
    }
}

impl RateAllocator for PhantomAllocator {
    fn on_interval(&mut self, m: &PortMeasurement) {
        self.capacity = m.capacity;
        let est = self
            .est
            .get_or_insert_with(|| MacrEstimator::new(self.cfg.macr, m.capacity));
        let used = match self.cfg.macr.residual {
            ResidualMode::Arrivals => m.arrival_rate(),
            ResidualMode::Departures => m.departure_rate(),
        };
        let residual = m.capacity - used;
        est.update(residual, m.capacity);
    }

    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {
        // Phantom reads nothing from forward RM cells: its measurement is
        // the aggregate arrival counter. (This is what makes it immune to
        // the CCR-averaging pathologies of EPRCA.)
    }

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, _queue: usize) {
        let limit = self.allowed_rate();
        if limit.is_finite() {
            rm.limit_er(limit);
        }
    }

    fn fair_share(&self) -> f64 {
        self.macr()
    }

    fn telemetry(&self) -> AllocatorTelemetry {
        match &self.est {
            Some(e) => AllocatorTelemetry {
                delta: e.last_err(),
                dev: e.dev(),
                gain: e.last_gain(),
            },
            None => AllocatorTelemetry::UNTRACKED,
        }
    }

    fn name(&self) -> &'static str {
        "phantom"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.f64("capacity", self.capacity);
        w.bool("init", self.est.is_some());
        if let Some(e) = &self.est {
            w.scope("est", |w| e.save(w));
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.capacity = r.f64("capacity")?;
        self.est = if r.bool("init")? {
            // The constructor argument only seeds the initial estimate,
            // which the restore below overwrites.
            let mut e = MacrEstimator::new(self.cfg.macr, 1.0);
            r.scope("est", |r| e.restore(r))?;
            Some(e)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(arrivals: u64, capacity: f64, dt: f64) -> PortMeasurement {
        PortMeasurement {
            dt,
            arrivals,
            departures: arrivals,
            queue: 0,
            capacity,
        }
    }

    #[test]
    fn lazily_initializes_and_tracks_residual() {
        let mut a = PhantomAllocator::paper();
        assert_eq!(a.macr(), 0.0);
        assert_eq!(a.allowed_rate(), f64::INFINITY);
        // 1000 cells/s capacity, 800 arriving -> residual 200
        for _ in 0..3000 {
            a.on_interval(&meas(8, 1000.0, 0.01));
        }
        assert!((a.macr() - 200.0).abs() < 2.0, "macr={}", a.macr());
        assert!((a.allowed_rate() - 1000.0).abs() < 10.0);
    }

    #[test]
    fn stamps_er_with_u_times_macr() {
        let mut a = PhantomAllocator::paper();
        for _ in 0..3000 {
            a.on_interval(&meas(8, 1000.0, 0.01));
        }
        let mut rm = RmCell::forward(500.0, 10_000.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 0);
        assert!((rm.er - 5.0 * a.macr()).abs() < 1e-9);
    }

    #[test]
    fn does_not_stamp_before_first_interval() {
        let mut a = PhantomAllocator::paper();
        let mut rm = RmCell::forward(500.0, 10_000.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 0);
        assert_eq!(rm.er, 10_000.0, "ER must be untouched before init");
    }

    #[test]
    fn fixed_point_with_closed_loop_sources() {
        // Emulate n greedy sessions that obey ER exactly with one interval
        // of delay: arrivals_k = n * min(u*MACR_{k-1}, a lot).
        let n = 2.0;
        let c = 100_000.0;
        let dt = 0.001;
        let mut a = PhantomAllocator::paper();
        let mut offered: f64 = 100.0; // cells/s aggregate
        for _ in 0..20_000 {
            let arrivals = (offered * dt).round() as u64;
            a.on_interval(&meas(arrivals, c, dt));
            offered = n * a.allowed_rate().min(c);
        }
        let expected_macr = c / (1.0 + n * 5.0);
        assert!(
            (a.macr() - expected_macr).abs() < 0.05 * expected_macr,
            "macr {} vs predicted {}",
            a.macr(),
            expected_macr
        );
    }

    #[test]
    fn forward_rm_is_ignored() {
        let mut a = PhantomAllocator::paper();
        a.on_interval(&meas(0, 1000.0, 0.01));
        let before = a.macr();
        let mut rm = RmCell::forward(999.0, 1.0);
        for _ in 0..100 {
            a.forward_rm(VcId(0), &mut rm, 500);
        }
        assert_eq!(a.macr(), before);
        assert_eq!(rm.er, 1.0);
    }

    #[test]
    fn constant_space_guarantee() {
        assert!(
            std::mem::size_of::<PhantomAllocator>() <= 256,
            "allocator state must be O(1): {} bytes",
            std::mem::size_of::<PhantomAllocator>()
        );
    }

    #[test]
    fn name_is_phantom() {
        assert_eq!(PhantomAllocator::paper().name(), "phantom");
    }
}
