//! A fluid (deterministic difference-equation) model of the Phantom
//! control loop.
//!
//! Strips away cells, queues and RM plumbing and iterates the recurrence
//! the algorithm *is*:
//!
//! ```text
//! allowed_k  = u · MACR_{k−d}                  (d = feedback delay, intervals)
//! r_{k}      = min(r_{k−1} + AIR', allowed_k)  (per-session, AIR-limited up,
//!                                               ER-clamped down)
//! Δ_k        = C − n · r_k                     (residual)
//! MACR_{k+1} = estimator update with Δ_k       (the real MacrEstimator)
//! ```
//!
//! Useful for what a packet simulation is too slow or too noisy for:
//! sweeping gains to find the stability boundary, checking the
//! normalization cap's claim (stable for any `n` with one parameter
//! set), and predicting convergence shapes before running the DES. The
//! closed-loop DES tests confirm the fluid fixed points match the
//! packet-level ones.
//!
//! Caveat on delay: this model updates every source *synchronously* once
//! per interval, which is the worst case for a delayed loop. The packet
//! simulation staggers feedback across sources and individual RM cells
//! (each source clamps at its own RM cadence), so it tolerates
//! considerably more loop delay than the fluid model predicts — compare
//! [`FluidModel::trajectory`] at `delay_intervals = 10` with the stable
//! 10 ms-propagation row of `repro table4`. Treat fluid instability as a
//! conservative warning, and fluid stability as a strong guarantee.

use crate::config::MacrConfig;
use crate::macr::MacrEstimator;

/// The fluid-model configuration.
#[derive(Clone, Copy, Debug)]
pub struct FluidModel {
    /// Link capacity (any rate unit).
    pub capacity: f64,
    /// Number of identical greedy sessions.
    pub n_sessions: usize,
    /// Utilization factor u.
    pub u: f64,
    /// Estimator parameters.
    pub macr: MacrConfig,
    /// Feedback delay in measurement intervals (control-loop RTT / Δt).
    pub delay_intervals: usize,
    /// Additive increase per interval per session (the TM 4.0 AIR ramp
    /// expressed per interval); `f64::INFINITY` = sources track ER
    /// instantly upward.
    pub air_per_interval: f64,
    /// Initial per-session rate.
    pub initial_rate: f64,
}

impl FluidModel {
    /// The paper's canonical loop: `n` sessions, u = 5, paper estimator
    /// gains, one interval of delay, instant upward tracking.
    pub fn paper(capacity: f64, n_sessions: usize) -> Self {
        FluidModel {
            capacity,
            n_sessions,
            u: 5.0,
            macr: MacrConfig::default(),
            delay_intervals: 1,
            air_per_interval: f64::INFINITY,
            initial_rate: 0.0,
        }
    }

    /// The analytic fixed point `C / (1 + n·u)`.
    pub fn fixed_point(&self) -> f64 {
        self.capacity / (1.0 + self.n_sessions as f64 * self.u)
    }

    /// Iterate `steps` intervals; returns the MACR trajectory.
    pub fn trajectory(&self, steps: usize) -> Vec<f64> {
        assert!(self.capacity > 0.0);
        let mut est = MacrEstimator::new(self.macr, self.capacity);
        let mut rate = self.initial_rate;
        // history[i] = MACR i intervals ago (ring buffer).
        let d = self.delay_intervals.max(1);
        let mut history = vec![est.macr(); d];
        let mut out = Vec::with_capacity(steps);
        for k in 0..steps {
            let allowed = self.u * history[k % d];
            rate = if allowed < rate {
                allowed // ER clamps immediately
            } else {
                (rate + self.air_per_interval).min(allowed)
            };
            let residual = self.capacity - self.n_sessions as f64 * rate;
            est.update(residual, self.capacity);
            history[k % d] = est.macr();
            out.push(est.macr());
        }
        out
    }

    /// Peak-to-peak oscillation of the trajectory tail (last quarter).
    pub fn tail_oscillation(&self, steps: usize) -> f64 {
        let traj = self.trajectory(steps);
        let tail = &traj[steps - steps / 4..];
        let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    /// Does the loop settle within `tol` (relative to the fixed point)?
    pub fn is_stable(&self, steps: usize, tol: f64) -> bool {
        let fp = self.fixed_point();
        let traj = self.trajectory(steps);
        let tail = &traj[steps - steps / 4..];
        tail.iter().all(|m| (m - fp).abs() <= tol * fp)
            && self.tail_oscillation(steps) <= 2.0 * tol * fp
    }

    /// Empirical stability boundary: the largest symmetric gain α (with
    /// normalization and adaptation disabled) for which the loop still
    /// settles. Bisects over `(0, 1]`.
    pub fn stability_boundary_alpha(&self, steps: usize, tol: f64) -> f64 {
        let probe = |alpha: f64| -> bool {
            let macr = MacrConfig {
                alpha_inc: alpha,
                alpha_dec: alpha,
                adaptive: false,
                norm_gain: f64::INFINITY,
                ..self.macr
            };
            FluidModel { macr, ..*self }.is_stable(steps, tol)
        };
        let mut lo = 0.0;
        let mut hi = 1.0;
        if probe(hi) {
            return hi;
        }
        for _ in 0..30 {
            let mid = (lo + hi) / 2.0;
            if probe(mid.max(1e-6)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_converges_to_the_analytic_fixed_point() {
        for n in [1, 2, 5, 50] {
            let m = FluidModel::paper(150_000.0, n);
            let traj = m.trajectory(20_000);
            let fp = m.fixed_point();
            let last = *traj.last().unwrap();
            assert!(
                (last - fp).abs() < 0.02 * fp,
                "n={n}: fluid {last:.1} vs fixed point {fp:.1}"
            );
        }
    }

    #[test]
    fn normalized_gains_are_stable_for_any_session_count() {
        for n in [1, 2, 10, 50, 200] {
            let m = FluidModel::paper(150_000.0, n);
            assert!(
                m.is_stable(40_000, 0.05),
                "paper config must be stable at n={n}"
            );
        }
    }

    #[test]
    fn unnormalized_large_gain_destabilizes_at_scale() {
        // Without the normalization cap, the linearized loop gain is
        // α·(1 + n·u); stability needs it below ~2. α = 0.2 gives gain
        // 1.2 at n = 1 (stable) but 50.2 at n = 50 (limit cycle).
        let raw = MacrConfig {
            alpha_inc: 0.2,
            alpha_dec: 0.2,
            adaptive: false,
            norm_gain: f64::INFINITY,
            ..MacrConfig::default()
        };
        let small = FluidModel {
            macr: raw,
            ..FluidModel::paper(150_000.0, 1)
        };
        assert!(small.is_stable(20_000, 0.05), "n=1 should tolerate α=0.2");
        let big = FluidModel {
            macr: raw,
            ..FluidModel::paper(150_000.0, 50)
        };
        assert!(
            !big.is_stable(20_000, 0.05),
            "n=50 with α=0.2 and no normalization must not settle"
        );
    }

    #[test]
    fn stability_boundary_shrinks_with_session_count() {
        let b2 = FluidModel::paper(150_000.0, 2).stability_boundary_alpha(8_000, 0.05);
        let b50 = FluidModel::paper(150_000.0, 50).stability_boundary_alpha(8_000, 0.05);
        assert!(
            b50 < b2,
            "boundary must shrink with n: α*(2)={b2:.4}, α*(50)={b50:.4}"
        );
        // Linearized prediction: α* ≈ 2/(1+n·u) up to clamping effects —
        // check the order of magnitude.
        assert!(b2 > 0.05 && b2 < 0.8, "α*(2) = {b2:.4} out of range");
        assert!(b50 > 0.001 && b50 < 0.1, "α*(50) = {b50:.4} out of range");
    }

    #[test]
    fn air_limit_slows_upward_convergence_only() {
        let fast = FluidModel::paper(150_000.0, 2);
        let slow = FluidModel {
            air_per_interval: 100.0,
            ..fast
        };
        let fp = fast.fixed_point();
        let first_hit = |m: &FluidModel| {
            m.trajectory(30_000)
                .iter()
                .position(|v| (v - fp).abs() < 0.05 * fp)
                .unwrap_or(usize::MAX)
        };
        assert!(
            first_hit(&slow) > first_hit(&fast),
            "an AIR-limited ramp must reach the fixed point later"
        );
        // …but both still get there.
        assert!(slow.is_stable(60_000, 0.05));
    }

    #[test]
    fn delay_limit_cycles_and_the_air_ramp_damps_it() {
        // With *instant* upward tracking, 10 intervals of feedback delay
        // drive the fluid loop into a large limit cycle…
        let instant = FluidModel {
            delay_intervals: 10,
            ..FluidModel::paper(150_000.0, 2)
        };
        let osc_instant = instant.tail_oscillation(60_000);
        assert!(
            osc_instant > instant.fixed_point(),
            "instant tracking + delay should limit-cycle"
        );
        // …and a TM 4.0-style AIR ramp damps it substantially (though the
        // synchronous worst-case fluid model remains conservative: the
        // packet simulation additionally staggers feedback across sources
        // and RM cells, which is why `repro table4` shows a *stable* DES
        // at the same delay — see the module docs).
        let ramped = FluidModel {
            air_per_interval: 0.002 * instant.capacity,
            ..instant
        };
        let osc_ramped = ramped.tail_oscillation(60_000);
        assert!(
            osc_ramped < 0.6 * osc_instant,
            "AIR ramp should substantially damp the cycle: \
             {osc_ramped:.0} vs {osc_instant:.0}"
        );
    }
}
