//! Phantom with binary feedback — the paper's Fig. 9 → Fig. 11 variant.
//!
//! Some networks cannot carry an explicit rate (e.g. an EFCI-only ATM
//! region, or an IP header with a single congestion bit). The paper shows
//! Phantom still works there: instead of stamping ER, the switch sets the
//! **NI (no increase)** bit on backward RM cells of sessions whose current
//! rate exceeds `u × MACR` — "any source that observes this bit set may
//! not increase its rate".
//!
//! NI alone can only freeze rates; if the aggregate overshoots the link a
//! decrease signal is needed too, so when the port queue exceeds a
//! congestion threshold the switch additionally sets **CI** on those
//! same over-limit sessions (selective pressure — unlike EPRCA's
//! indiscriminate "very congested" CI that causes beat-down).

use crate::config::{PhantomConfig, ResidualMode};
use crate::macr::MacrEstimator;
use phantom_atm::allocator::{AllocatorTelemetry, PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};

/// Phantom in binary-feedback (NI/CI) mode.
#[derive(Clone, Copy, Debug)]
pub struct PhantomNi {
    cfg: PhantomConfig,
    est: Option<MacrEstimator>,
    /// Queue length (cells) above which over-limit sessions also get CI.
    pub ci_queue_threshold: usize,
}

impl PhantomNi {
    /// A binary-feedback Phantom with the given config and CI threshold.
    pub fn new(cfg: PhantomConfig, ci_queue_threshold: usize) -> Self {
        cfg.validate().expect("invalid Phantom configuration");
        PhantomNi {
            cfg,
            est: None,
            ci_queue_threshold,
        }
    }

    /// Paper-default configuration with a 300-cell CI threshold (matching
    /// the congestion threshold scale used by the baselines).
    pub fn paper() -> Self {
        Self::new(PhantomConfig::paper(), 300)
    }

    /// Current MACR (0 before the first interval).
    pub fn macr(&self) -> f64 {
        self.est.map(|e| e.macr()).unwrap_or(0.0)
    }

    fn limit(&self) -> f64 {
        match &self.est {
            Some(e) => self.cfg.utilization_factor * e.macr(),
            None => f64::INFINITY,
        }
    }
}

impl RateAllocator for PhantomNi {
    fn on_interval(&mut self, m: &PortMeasurement) {
        let est = self
            .est
            .get_or_insert_with(|| MacrEstimator::new(self.cfg.macr, m.capacity));
        let used = match self.cfg.macr.residual {
            ResidualMode::Arrivals => m.arrival_rate(),
            ResidualMode::Departures => m.departure_rate(),
        };
        est.update(m.capacity - used, m.capacity);
    }

    fn forward_rm(&mut self, _vc: VcId, _rm: &mut RmCell, _queue: usize) {}

    fn backward_rm(&mut self, _vc: VcId, rm: &mut RmCell, queue: usize) {
        let limit = self.limit();
        if !limit.is_finite() {
            return;
        }
        // Sessions at or below their guaranteed MCR are never pressured.
        if rm.ccr > limit && rm.ccr > rm.mcr {
            rm.ni = true;
            if queue > self.ci_queue_threshold {
                rm.ci = true;
            }
        }
    }

    fn fair_share(&self) -> f64 {
        self.macr()
    }

    fn telemetry(&self) -> AllocatorTelemetry {
        match &self.est {
            Some(e) => AllocatorTelemetry {
                delta: e.last_err(),
                dev: e.dev(),
                gain: e.last_gain(),
            },
            None => AllocatorTelemetry::UNTRACKED,
        }
    }

    fn name(&self) -> &'static str {
        "phantom-ni"
    }

    fn save_state(&self, w: &mut phantom_sim::KvWriter) -> Result<(), String> {
        w.bool("init", self.est.is_some());
        if let Some(e) = &self.est {
            w.scope("est", |w| e.save(w));
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.est = if r.bool("init")? {
            let mut e = MacrEstimator::new(self.cfg.macr, 1.0);
            r.scope("est", |r| e.restore(r))?;
            Some(e)
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settled() -> PhantomNi {
        let mut a = PhantomNi::paper();
        // capacity 1000, arrivals 800/s -> MACR ~ 200, limit ~ 1000
        for _ in 0..3000 {
            a.on_interval(&PortMeasurement {
                dt: 0.01,
                arrivals: 8,
                departures: 8,
                queue: 0,
                capacity: 1000.0,
            });
        }
        a
    }

    #[test]
    fn under_limit_sessions_untouched() {
        let mut a = settled();
        let mut rm = RmCell::forward(500.0, 9999.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 0);
        assert!(!rm.ni && !rm.ci);
        assert_eq!(rm.er, 9999.0, "NI mode never touches ER");
    }

    #[test]
    fn over_limit_sessions_get_ni() {
        let mut a = settled();
        let mut rm = RmCell::forward(5000.0, 9999.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 0);
        assert!(rm.ni);
        assert!(!rm.ci, "CI only under queue pressure");
    }

    #[test]
    fn congested_queue_escalates_to_ci() {
        let mut a = settled();
        let mut rm = RmCell::forward(5000.0, 9999.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 301);
        assert!(rm.ni && rm.ci);
        // but an under-limit session is spared even under pressure
        let mut rm2 = RmCell::forward(10.0, 9999.0).turned_around();
        a.backward_rm(VcId(0), &mut rm2, 301);
        assert!(!rm2.ni && !rm2.ci, "selective pressure, no beat-down");
    }

    #[test]
    fn silent_before_first_interval() {
        let mut a = PhantomNi::paper();
        let mut rm = RmCell::forward(1e9, 9999.0).turned_around();
        a.backward_rm(VcId(0), &mut rm, 1000);
        assert!(!rm.ni && !rm.ci);
    }

    #[test]
    fn constant_space() {
        assert!(std::mem::size_of::<PhantomNi>() <= 256);
    }
}
