//! Configuration of the Phantom algorithm.
//!
//! Defaults follow the paper where the paper pins a value
//! (`utilization_factor = 5`, measurement interval Δt = 1 ms via the port)
//! and are conservative engineering choices elsewhere; every knob is an
//! ablation axis in the benchmark harness (`repro table3`).

/// How the residual bandwidth Δ is measured each interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResidualMode {
    /// `Δ = C − arrival_rate`. Can go negative in overload, which makes
    /// MACR react *during* congestion, not only after the queue drains.
    /// This is the default and the behavior the paper's fast reaction
    /// implies.
    Arrivals,
    /// `Δ = C − departure_rate` — the literally "unused" capacity. While a
    /// standing queue keeps the link busy, Δ stays 0 even if arrivals have
    /// already dropped, so MACR undershoots; kept as an ablation.
    Departures,
}

/// Parameters of the MACR estimator.
#[derive(Clone, Copy, Debug)]
pub struct MacrConfig {
    /// Gain applied when the residual is above MACR (estimate grows).
    pub alpha_inc: f64,
    /// Gain applied when the residual is below MACR (estimate shrinks).
    /// Larger than `alpha_inc` so congestion is reacted to faster — the
    /// paper attributes Phantom's larger transient queue vs CAPC to this
    /// fast reaction.
    pub alpha_dec: f64,
    /// Gain of the mean-deviation filter (Jacobson's h, default 1/4).
    pub dev_gain: f64,
    /// When `true`, updates whose error is within the current mean
    /// deviation are treated as noise and damped by `slow_scale` — the
    /// paper's "approximate the standard deviation in Δ and take it into
    /// consideration in the calculation of α_inc and α_dec".
    pub adaptive: bool,
    /// Damping factor applied to α when `|err| ≤ dev` (adaptive mode).
    pub slow_scale: f64,
    /// Stability normalization: α is additionally capped at
    /// `norm_gain × MACR / C`. Near the fixed point `MACR* = C/(1+n·u)`
    /// the loop gain is `α·C/MACR*`, so this cap keeps the loop stable
    /// for *any* number of sessions without per-session state. Set to
    /// `f64::INFINITY` to disable (ablation).
    pub norm_gain: f64,
    /// Residual measurement mode.
    pub residual: ResidualMode,
    /// Floor of the estimate, as a fraction of link capacity (MACR must
    /// stay positive so sessions can probe upward again).
    pub min_frac: f64,
    /// Initial estimate, as a fraction of link capacity.
    pub init_frac: f64,
}

impl Default for MacrConfig {
    fn default() -> Self {
        MacrConfig {
            alpha_inc: 1.0 / 16.0,
            alpha_dec: 1.0 / 4.0,
            dev_gain: 0.25,
            adaptive: true,
            slow_scale: 0.25,
            norm_gain: 0.5,
            residual: ResidualMode::Arrivals,
            min_frac: 0.001,
            init_frac: 0.02,
        }
    }
}

impl MacrConfig {
    /// Validate parameter invariants.
    // `!(x > 0)`-style checks are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("alpha_inc", self.alpha_inc), ("alpha_dec", self.alpha_dec)] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} must be in (0, 1]"));
            }
        }
        if !(self.dev_gain > 0.0 && self.dev_gain <= 1.0) {
            return Err("dev_gain must be in (0, 1]".into());
        }
        if !(self.slow_scale > 0.0 && self.slow_scale <= 1.0) {
            return Err("slow_scale must be in (0, 1]".into());
        }
        if !(self.norm_gain > 0.0) {
            return Err("norm_gain must be positive".into());
        }
        if !(self.min_frac > 0.0 && self.min_frac < 1.0) {
            return Err("min_frac must be in (0, 1)".into());
        }
        if !(self.init_frac > 0.0 && self.init_frac <= 1.0) {
            return Err("init_frac must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Non-adaptive variant (fixed gains) — the Fig. 12 ablation.
    pub fn fixed_gains(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

/// Full Phantom port configuration.
#[derive(Clone, Copy, Debug)]
pub struct PhantomConfig {
    /// The estimator parameters.
    pub macr: MacrConfig,
    /// The paper's `utilization_factor` u: sessions may send at `u × MACR`.
    /// The paper's figures use u = 5 (91% utilization with 2 sessions).
    pub utilization_factor: f64,
}

impl Default for PhantomConfig {
    fn default() -> Self {
        PhantomConfig {
            macr: MacrConfig::default(),
            utilization_factor: 5.0,
        }
    }
}

impl PhantomConfig {
    /// The paper's configuration (alias of `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Override the utilization factor.
    pub fn with_utilization_factor(mut self, u: f64) -> Self {
        assert!(u > 0.0);
        self.utilization_factor = u;
        self
    }

    /// Override the estimator config.
    pub fn with_macr(mut self, m: MacrConfig) -> Self {
        self.macr = m;
        self
    }

    /// Validate parameter invariants.
    // `!(x > 0)`-style checks are deliberate: they reject NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.utilization_factor > 0.0) {
            return Err("utilization_factor must be positive".into());
        }
        self.macr.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let c = PhantomConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.utilization_factor, 5.0);
        assert!(c.macr.adaptive);
        assert!(
            c.macr.alpha_dec > c.macr.alpha_inc,
            "decrease reacts faster"
        );
        assert_eq!(c.macr.residual, ResidualMode::Arrivals);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = MacrConfig {
            alpha_inc: 0.0,
            ..MacrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MacrConfig {
            alpha_dec: 1.5,
            ..MacrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MacrConfig {
            min_frac: 1.0,
            ..MacrConfig::default()
        };
        assert!(c.validate().is_err());
        let mut p = PhantomConfig::paper();
        p.utilization_factor = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn fixed_gains_disables_adaptation_only() {
        let c = MacrConfig::default().fixed_gains();
        assert!(!c.adaptive);
        assert_eq!(c.alpha_inc, MacrConfig::default().alpha_inc);
    }

    #[test]
    #[should_panic]
    fn zero_utilization_factor_panics_in_builder() {
        let _ = PhantomConfig::paper().with_utilization_factor(0.0);
    }
}
