//! The MACR estimator — Phantom's entire per-port state.
//!
//! Constant space by construction: one `f64` for the estimate, one for the
//! mean deviation, plus the (immutable) configuration. The estimator knows
//! nothing about sessions; it sees only the aggregate residual bandwidth
//! measured over each interval.

use crate::config::MacrConfig;

/// Exponentially weighted estimator of the residual bandwidth with
/// asymmetric, deviation-gated, stability-normalized gains.
///
/// ```
/// use phantom_core::{MacrConfig, MacrEstimator};
///
/// let mut est = MacrEstimator::new(MacrConfig::default(), 1000.0);
/// for _ in 0..2000 {
///     est.update(200.0, 1000.0); // constant residual of 200 units/s
/// }
/// assert!((est.macr() - 200.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MacrEstimator {
    cfg: MacrConfig,
    macr: f64,
    dev: f64,
    last_err: f64,
    last_gain: f64,
}

impl MacrEstimator {
    /// A fresh estimator for a link of `capacity` (cells/s or any
    /// consistent rate unit); the initial estimate is
    /// `cfg.init_frac × capacity`.
    pub fn new(cfg: MacrConfig, capacity: f64) -> Self {
        cfg.validate().expect("invalid MACR configuration");
        assert!(capacity > 0.0, "capacity must be positive");
        MacrEstimator {
            cfg,
            macr: cfg.init_frac * capacity,
            dev: 0.0,
            last_err: f64::NAN,
            last_gain: f64::NAN,
        }
    }

    /// Current estimate.
    pub fn macr(&self) -> f64 {
        self.macr
    }

    /// Current mean deviation of the residual.
    pub fn dev(&self) -> f64 {
        self.dev
    }

    /// The error (`residual − MACR`) fed into the last update; NaN
    /// before the first update. Instrumentation only.
    pub fn last_err(&self) -> f64 {
        self.last_err
    }

    /// The gain actually applied by the last update, after the adaptive
    /// gate and the stability cap; NaN before the first update.
    /// Instrumentation only.
    pub fn last_gain(&self) -> f64 {
        self.last_gain
    }

    /// The configuration in force.
    pub fn config(&self) -> &MacrConfig {
        &self.cfg
    }

    /// Serialize the evolving state for a checkpoint (exact round-trip).
    /// The configuration is static and not written.
    pub fn save(&self, w: &mut phantom_sim::KvWriter) {
        w.f64("macr", self.macr);
        w.f64("dev", self.dev);
        w.f64("last_err", self.last_err);
        w.f64("last_gain", self.last_gain);
    }

    /// Overwrite the evolving state from a [`MacrEstimator::save`]
    /// record. The estimator must have been rebuilt with the original
    /// configuration.
    pub fn restore(&mut self, r: &mut phantom_sim::KvReader) -> Result<(), String> {
        self.macr = r.f64("macr")?;
        self.dev = r.f64("dev")?;
        self.last_err = r.f64("last_err")?;
        self.last_gain = r.f64("last_gain")?;
        Ok(())
    }

    /// Feed one interval's residual-bandwidth measurement (`residual` may
    /// be negative in overload when measuring against arrivals).
    /// `capacity` bounds the estimate from above.
    pub fn update(&mut self, residual: f64, capacity: f64) {
        let err = residual - self.macr;
        // Jacobson order (DESIGN.md §4.1): the mean deviation moves first,
        // then the adaptive gate compares the error against the *updated*
        // deviation. For h < 1 the gate decision is the same either way
        // (|err| > (1−h)·dev + h·|err| ⟺ |err| > dev), but at h = 1 the
        // orders diverge, so the order is pinned by a regression test.
        self.dev += self.cfg.dev_gain * (err.abs() - self.dev);
        let mut alpha = if err > 0.0 {
            self.cfg.alpha_inc
        } else {
            self.cfg.alpha_dec
        };
        if self.cfg.adaptive && err.abs() <= self.dev {
            alpha *= self.cfg.slow_scale;
        }
        // Stability normalization: cap the loop gain (see MacrConfig docs).
        let cap = self.cfg.norm_gain * self.macr / capacity;
        if alpha > cap {
            alpha = cap;
        }
        self.macr += alpha * err;
        let floor = self.cfg.min_frac * capacity;
        self.macr = self.macr.clamp(floor, capacity);
        self.last_err = err;
        self.last_gain = alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResidualMode;

    fn est() -> MacrEstimator {
        MacrEstimator::new(MacrConfig::default(), 1000.0)
    }

    #[test]
    fn starts_at_init_fraction() {
        let e = est();
        assert!((e.macr() - 20.0).abs() < 1e-12); // 0.02 * 1000
        assert_eq!(e.dev(), 0.0);
    }

    #[test]
    fn converges_to_constant_residual() {
        let mut e = est();
        for _ in 0..2000 {
            e.update(200.0, 1000.0);
        }
        assert!(
            (e.macr() - 200.0).abs() < 1.0,
            "MACR should track the residual, got {}",
            e.macr()
        );
    }

    #[test]
    fn decrease_is_faster_than_increase() {
        // Feed a step up and a step down of equal size; the step down must
        // close more ground per update (alpha_dec > alpha_inc), once MACR
        // is large enough for the normalization cap not to bind.
        let cfg = MacrConfig {
            adaptive: false,
            norm_gain: f64::INFINITY,
            ..MacrConfig::default()
        };
        let mut up = MacrEstimator::new(cfg, 1000.0);
        // settle at 500 first
        for _ in 0..3000 {
            up.update(500.0, 1000.0);
        }
        let mut down = up;
        up.update(600.0, 1000.0);
        down.update(400.0, 1000.0);
        let up_move = up.macr() - 500.0;
        let down_move = 500.0 - down.macr();
        assert!(
            down_move > up_move * 2.0,
            "down {down_move} should outpace up {up_move}"
        );
    }

    #[test]
    fn negative_residual_pulls_estimate_to_floor() {
        let mut e = est();
        for _ in 0..500 {
            e.update(-500.0, 1000.0);
        }
        assert!((e.macr() - 1.0).abs() < 1e-9, "floor = min_frac * capacity");
    }

    #[test]
    fn estimate_never_exceeds_capacity() {
        let mut e = est();
        for _ in 0..5000 {
            e.update(10_000.0, 1000.0); // absurdly large residual
        }
        assert!(e.macr() <= 1000.0);
    }

    #[test]
    fn adaptive_damping_reduces_steady_state_wobble() {
        // Alternate residual between 190 and 210 around a 200 mean.
        let run = |adaptive: bool| {
            let cfg = MacrConfig {
                adaptive,
                ..MacrConfig::default()
            };
            let mut e = MacrEstimator::new(cfg, 1000.0);
            for _ in 0..3000 {
                e.update(200.0, 1000.0);
            }
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in 0..2000 {
                let r = if i % 2 == 0 { 190.0 } else { 210.0 };
                e.update(r, 1000.0);
                if i > 500 {
                    lo = lo.min(e.macr());
                    hi = hi.max(e.macr());
                }
            }
            hi - lo
        };
        let wobble_adaptive = run(true);
        let wobble_fixed = run(false);
        assert!(
            wobble_adaptive < wobble_fixed,
            "adaptive {wobble_adaptive} vs fixed {wobble_fixed}"
        );
    }

    #[test]
    fn normalization_caps_gain_when_estimate_is_small() {
        // With MACR near the floor a huge error must not overshoot:
        // one update moves at most norm_gain * macr.
        let mut e = est(); // macr = 20
        let before = e.macr();
        e.update(1000.0, 1000.0);
        let moved = e.macr() - before;
        assert!(moved <= 0.5 * before * (1000.0 - before) / before + 1e-9);
        // concretely: alpha <= 0.5*20/1000 = 0.01, err = 980 -> move <= 9.8
        assert!(moved <= 9.8 + 1e-9);
    }

    #[test]
    fn adaptive_gate_reads_the_updated_deviation() {
        // Pins the DESIGN.md §4.1 ordering: dev moves before the gate
        // reads it. Only h = dev_gain = 1 can tell the orders apart: then
        // dev' = |err| exactly, so the gate `|err| > dev'` is always
        // false and every update is damped by slow_scale — whereas gating
        // on the stale deviation would treat a sudden step as fast-path.
        let cfg = MacrConfig {
            dev_gain: 1.0,
            norm_gain: f64::INFINITY,
            ..MacrConfig::default()
        };
        let mut e = MacrEstimator::new(cfg, 1000.0);
        for _ in 0..3000 {
            e.update(500.0, 1000.0); // settle: macr -> 500, dev -> 0
        }
        let before = e.macr();
        e.update(900.0, 1000.0); // step: err = 400, stale dev ~ 0
        let moved = e.macr() - before;
        let damped = 400.0 * cfg.alpha_inc * cfg.slow_scale;
        let undamped = 400.0 * cfg.alpha_inc;
        assert!(
            (moved - damped).abs() < 0.1,
            "gate must read the updated dev (moved {moved}, want {damped}, stale order would give {undamped})"
        );
        assert!((e.dev() - 400.0).abs() < 0.1, "h = 1 copies |err| into dev");
    }

    #[test]
    fn update_telemetry_tracks_err_and_gain() {
        let mut e = est();
        assert!(e.last_err().is_nan() && e.last_gain().is_nan());
        e.update(520.0, 1000.0); // macr = 20 -> err = 500
        assert!((e.last_err() - 500.0).abs() < 1e-12);
        // gain must be the capped/gated value actually applied
        let moved = e.macr() - 20.0;
        assert!((e.last_gain() * e.last_err() - moved).abs() < 1e-9);
    }

    #[test]
    fn constant_space_a_few_machine_words() {
        // The paper's headline taxonomy: Phantom is O(1) per port.
        assert!(
            std::mem::size_of::<MacrEstimator>() <= 128,
            "estimator grew beyond constant-space credibility: {} bytes",
            std::mem::size_of::<MacrEstimator>()
        );
    }

    #[test]
    #[should_panic(expected = "invalid MACR configuration")]
    fn invalid_config_is_rejected() {
        let cfg = MacrConfig {
            alpha_inc: 0.0,
            ..MacrConfig::default()
        };
        let _ = MacrEstimator::new(cfg, 1.0);
    }

    #[test]
    fn departures_mode_is_just_a_tag() {
        // ResidualMode is consumed by the allocator, not the estimator;
        // make sure the config carries it through.
        let cfg = MacrConfig {
            residual: ResidualMode::Departures,
            ..MacrConfig::default()
        };
        let e = MacrEstimator::new(cfg, 10.0);
        assert_eq!(e.config().residual, ResidualMode::Departures);
    }
}
