//! # phantom-core — the Phantom flow-control algorithm
//!
//! This crate implements the contribution of *Afek, Mansour, Ostfeld,
//! "Phantom: A Simple and Effective Flow Control Scheme", SIGCOMM 1996*:
//! a constant-space, rate-based flow-control algorithm for switch output
//! ports and routers.
//!
//! ## The idea
//!
//! Treat the **residual (unused) bandwidth of the link as the rate of one
//! extra, imaginary session** — the *phantom session*. If the phantom
//! session's rate settles at `MACR`, then allowing every real session to
//! send at `utilization_factor × MACR` (u × MACR) makes the allocation
//! behave exactly like max-min fairness over `n + 1/u` sessions: on a link
//! of capacity `C` crossed by `n` greedy sessions the fixed point is
//!
//! ```text
//! MACR = C / (1 + n·u)      rate per session = u·C / (1 + n·u)
//! utilization = n·u / (1 + n·u)            (u = 5 ⇒ 91% at n = 2)
//! ```
//!
//! and in a general network the allocation converges to weighted max-min
//! fairness where each link contributes one phantom session of weight
//! `1/u` ([`fixed_point`], and `phantom_metrics::phantom_prediction` for
//! arbitrary topologies).
//!
//! ## The algorithm (constant space)
//!
//! Per output port, the algorithm keeps two floats — `MACR` and a mean
//! deviation `dev` — and updates them once per measurement interval Δt
//! from a single aggregate counter (cell arrivals):
//!
//! ```text
//! Δ    = C − arrivals/Δt            # residual bandwidth
//! err  = Δ − MACR
//! α    = α_inc if err > 0 else α_dec
//! if adaptive and |err| ≤ dev: α *= slow_scale   # Jacobson-style damping
//! dev  = dev + dev_gain·(|err| − dev)
//! MACR = clamp(MACR + α·err, macr_min, C)
//! ```
//!
//! Feedback is carried to sources by stamping `ER := min(ER, u·MACR)` on
//! backward RM cells ([`PhantomAllocator`]), or — for networks that only
//! have a binary bit — by setting NI/CI on sessions whose `CCR > u·MACR`
//! ([`efci::PhantomNi`], the paper's Fig. 9 vs Fig. 11 comparison).
//!
//! The same estimator drives the paper's TCP router mechanisms (Selective
//! Discard and friends) in the `phantom-tcp` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod efci;
pub mod fixed_point;
pub mod fluid;
pub mod macr;
pub mod phantom;

pub use config::{MacrConfig, PhantomConfig, ResidualMode};
pub use efci::PhantomNi;
pub use fluid::FluidModel;
pub use macr::MacrEstimator;
pub use phantom::PhantomAllocator;
