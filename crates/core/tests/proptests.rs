//! Property-based tests of the Phantom estimator and allocator.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};
use phantom_core::{MacrConfig, MacrEstimator, PhantomAllocator, PhantomConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MacrConfig> {
    (
        0.01f64..1.0,                                  // alpha_inc
        0.01f64..1.0,                                  // alpha_dec
        0.05f64..1.0,                                  // dev_gain
        any::<bool>(),                                 // adaptive
        0.05f64..1.0,                                  // slow_scale
        prop_oneof![Just(f64::INFINITY), 0.1f64..2.0], // norm_gain
        1e-4f64..0.2,                                  // min_frac
        1e-3f64..1.0,                                  // init_frac
    )
        .prop_map(
            |(
                alpha_inc,
                alpha_dec,
                dev_gain,
                adaptive,
                slow_scale,
                norm_gain,
                min_frac,
                init_frac,
            )| {
                MacrConfig {
                    alpha_inc,
                    alpha_dec,
                    dev_gain,
                    adaptive,
                    slow_scale,
                    norm_gain,
                    residual: phantom_core::ResidualMode::Arrivals,
                    min_frac,
                    init_frac,
                }
            },
        )
}

proptest! {
    /// The estimate always stays within [floor, capacity], whatever the
    /// residual sequence — including absurd negatives and positives.
    #[test]
    fn estimator_bounded(
        cfg in arb_config(),
        capacity in 1.0f64..1e7,
        residuals in proptest::collection::vec(-1e9f64..1e9, 1..500),
    ) {
        let mut e = MacrEstimator::new(cfg, capacity);
        for &r in &residuals {
            e.update(r, capacity);
            prop_assert!(e.macr() >= cfg.min_frac * capacity - 1e-9);
            prop_assert!(e.macr() <= capacity + 1e-9);
            prop_assert!(e.dev() >= 0.0);
            prop_assert!(e.macr().is_finite() && e.dev().is_finite());
        }
    }

    /// Fed a constant residual long enough, the estimate lands within a
    /// few percent of it (when the residual is inside the clamp range
    /// and comfortably above the floor).
    #[test]
    fn estimator_converges_to_constant(
        cfg in arb_config(),
        capacity in 100.0f64..1e6,
        frac in 0.25f64..0.9,
    ) {
        let target = frac * capacity;
        prop_assume!(target > 2.0 * cfg.min_frac * capacity);
        let mut e = MacrEstimator::new(cfg, capacity);
        for _ in 0..30_000 {
            e.update(target, capacity);
        }
        prop_assert!(
            (e.macr() - target).abs() < 0.05 * target,
            "macr {} vs target {target}",
            e.macr()
        );
    }

    /// The allocator never *raises* the ER field of an RM cell, and the
    /// stamped value is exactly min(er, u × MACR).
    #[test]
    fn er_stamp_is_monotone_decreasing(
        er0 in 1.0f64..1e7,
        arrivals in proptest::collection::vec(0u64..2000, 1..200),
    ) {
        let mut a = PhantomAllocator::paper();
        for &n in &arrivals {
            a.on_interval(&PortMeasurement {
                dt: 0.001,
                arrivals: n,
                departures: n,
                queue: 0,
                capacity: 353_773.6,
            });
            let mut rm = RmCell::forward(1000.0, er0).turned_around();
            let before = rm.er;
            a.backward_rm(VcId(0), &mut rm, 0);
            prop_assert!(rm.er <= before);
            let expect = before.min(5.0 * a.macr());
            prop_assert!((rm.er - expect).abs() < 1e-9);
        }
    }

    /// Validation accepts everything `arb_config` generates (i.e. the
    /// constructor never panics on parameters within documented ranges).
    #[test]
    fn valid_configs_construct(cfg in arb_config(), cap in 1.0f64..1e9) {
        let _ = MacrEstimator::new(cfg, cap);
        let _ = PhantomAllocator::new(PhantomConfig {
            macr: cfg,
            utilization_factor: 5.0,
        });
    }

    /// The offered limit is `u × MACR` by definition, after *any* sequence
    /// of measurement intervals (and infinite before the first one).
    #[test]
    fn allowed_rate_is_u_times_macr(
        u in prop_oneof![Just(1.0f64), Just(5.0), Just(10.0), 0.5f64..20.0],
        measurements in proptest::collection::vec((0u64..5000, 0u64..5000), 1..100),
    ) {
        let mut a = PhantomAllocator::new(
            PhantomConfig::paper().with_utilization_factor(u),
        );
        prop_assert!(a.allowed_rate().is_infinite(), "no throttling before init");
        for &(arrivals, departures) in &measurements {
            a.on_interval(&PortMeasurement {
                dt: 0.001,
                arrivals,
                departures,
                queue: 0,
                capacity: 353_773.6,
            });
            let want = u * a.macr();
            prop_assert!(
                (a.allowed_rate() - want).abs() <= 1e-9 * want.max(1.0),
                "allowed_rate {} vs u × MACR {}",
                a.allowed_rate(),
                want
            );
        }
    }

    /// Closing the loop — n sessions that obey ER exactly, one interval
    /// late — lands MACR within 5% of the paper's fixed point
    /// `C / (1 + n·u)` for every n in 1..=8 and u in {1, 5, 10}.
    #[test]
    fn closed_loop_fixed_point_matches_prediction(
        n in 1u32..=8,
        u in prop_oneof![Just(1.0f64), Just(5.0), Just(10.0)],
    ) {
        let c = 100_000.0;
        let dt = 0.001;
        let mut a = PhantomAllocator::new(
            PhantomConfig::paper().with_utilization_factor(u),
        );
        let mut offered: f64 = 100.0; // aggregate cells/s
        for _ in 0..30_000 {
            let arrivals = (offered * dt).round() as u64;
            a.on_interval(&PortMeasurement {
                dt,
                arrivals,
                departures: arrivals,
                queue: 0,
                capacity: c,
            });
            offered = f64::from(n) * a.allowed_rate().min(c);
        }
        let expected = c / (1.0 + f64::from(n) * u);
        prop_assert!(
            (a.macr() - expected).abs() < 0.05 * expected,
            "n={n} u={u}: macr {} vs predicted {expected}",
            a.macr()
        );
    }
}
