//! Property-based tests of the Phantom estimator and allocator.

use phantom_atm::allocator::{PortMeasurement, RateAllocator};
use phantom_atm::cell::{RmCell, VcId};
use phantom_core::{MacrConfig, MacrEstimator, PhantomAllocator, PhantomConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = MacrConfig> {
    (
        0.01f64..1.0,  // alpha_inc
        0.01f64..1.0,  // alpha_dec
        0.05f64..1.0,  // dev_gain
        any::<bool>(), // adaptive
        0.05f64..1.0,  // slow_scale
        prop_oneof![Just(f64::INFINITY), 0.1f64..2.0], // norm_gain
        1e-4f64..0.2,  // min_frac
        1e-3f64..1.0,  // init_frac
    )
        .prop_map(
            |(alpha_inc, alpha_dec, dev_gain, adaptive, slow_scale, norm_gain, min_frac, init_frac)| {
                MacrConfig {
                    alpha_inc,
                    alpha_dec,
                    dev_gain,
                    adaptive,
                    slow_scale,
                    norm_gain,
                    residual: phantom_core::ResidualMode::Arrivals,
                    min_frac,
                    init_frac,
                }
            },
        )
}

proptest! {
    /// The estimate always stays within [floor, capacity], whatever the
    /// residual sequence — including absurd negatives and positives.
    #[test]
    fn estimator_bounded(
        cfg in arb_config(),
        capacity in 1.0f64..1e7,
        residuals in proptest::collection::vec(-1e9f64..1e9, 1..500),
    ) {
        let mut e = MacrEstimator::new(cfg, capacity);
        for &r in &residuals {
            e.update(r, capacity);
            prop_assert!(e.macr() >= cfg.min_frac * capacity - 1e-9);
            prop_assert!(e.macr() <= capacity + 1e-9);
            prop_assert!(e.dev() >= 0.0);
            prop_assert!(e.macr().is_finite() && e.dev().is_finite());
        }
    }

    /// Fed a constant residual long enough, the estimate lands within a
    /// few percent of it (when the residual is inside the clamp range
    /// and comfortably above the floor).
    #[test]
    fn estimator_converges_to_constant(
        cfg in arb_config(),
        capacity in 100.0f64..1e6,
        frac in 0.25f64..0.9,
    ) {
        let target = frac * capacity;
        prop_assume!(target > 2.0 * cfg.min_frac * capacity);
        let mut e = MacrEstimator::new(cfg, capacity);
        for _ in 0..30_000 {
            e.update(target, capacity);
        }
        prop_assert!(
            (e.macr() - target).abs() < 0.05 * target,
            "macr {} vs target {target}",
            e.macr()
        );
    }

    /// The allocator never *raises* the ER field of an RM cell, and the
    /// stamped value is exactly min(er, u × MACR).
    #[test]
    fn er_stamp_is_monotone_decreasing(
        er0 in 1.0f64..1e7,
        arrivals in proptest::collection::vec(0u64..2000, 1..200),
    ) {
        let mut a = PhantomAllocator::paper();
        for &n in &arrivals {
            a.on_interval(&PortMeasurement {
                dt: 0.001,
                arrivals: n,
                departures: n,
                queue: 0,
                capacity: 353_773.6,
            });
            let mut rm = RmCell::forward(1000.0, er0).turned_around();
            let before = rm.er;
            a.backward_rm(VcId(0), &mut rm, 0);
            prop_assert!(rm.er <= before);
            let expect = before.min(5.0 * a.macr());
            prop_assert!((rm.er - expect).abs() < 1e-9);
        }
    }

    /// Validation accepts everything `arb_config` generates (i.e. the
    /// constructor never panics on parameters within documented ranges).
    #[test]
    fn valid_configs_construct(cfg in arb_config(), cap in 1.0f64..1e9) {
        let _ = MacrEstimator::new(cfg, cap);
        let _ = PhantomAllocator::new(PhantomConfig {
            macr: cfg,
            utilization_factor: 5.0,
        });
    }
}
