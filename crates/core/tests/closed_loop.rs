//! Closed-loop tests: Phantom driving real TM 4.0 sources over the ATM
//! substrate. These pin the paper's headline claims at small scale before
//! the full scenario suite builds on them.

use phantom_atm::network::SessionId;
use phantom_atm::network::TrunkIdx;
use phantom_atm::source::AbrSource;
use phantom_atm::units::{cps_to_mbps, mbps_to_cps};
use phantom_atm::{AtmMsg, NetworkBuilder, Traffic};
use phantom_core::fixed_point::{single_link_macr, single_link_rate};
use phantom_core::{PhantomAllocator, PhantomConfig, PhantomNi};
use phantom_sim::{Engine, SimDuration, SimTime};

fn phantom_net(n_sessions: usize, seed: u64) -> (Engine<AtmMsg>, phantom_atm::Network) {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..n_sessions {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(seed);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));
    (engine, net)
}

#[test]
fn two_sessions_converge_to_the_phantom_fixed_point() {
    let (mut engine, net) = phantom_net(2, 1);
    engine.run_until(SimTime::from_millis(500));
    let c = mbps_to_cps(150.0);
    let macr_pred = single_link_macr(c, 2, 5.0);
    let rate_pred = single_link_rate(c, 2, 5.0);

    let macr = net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.3);
    assert!(
        (macr - macr_pred).abs() < 0.1 * macr_pred,
        "MACR {:.1} vs predicted {:.1} ({} vs {} Mb/s)",
        macr,
        macr_pred,
        cps_to_mbps(macr),
        cps_to_mbps(macr_pred)
    );
    for s in 0..2 {
        let acr = engine.node::<AbrSource>(net.sessions[s].source).acr();
        assert!(
            (acr - rate_pred).abs() < 0.1 * rate_pred,
            "session {s} ACR {:.1} Mb/s vs predicted {:.1} Mb/s",
            cps_to_mbps(acr),
            cps_to_mbps(rate_pred)
        );
    }
}

#[test]
fn convergence_is_fast_tens_of_milliseconds() {
    let (mut engine, net) = phantom_net(2, 2);
    engine.run_until(SimTime::from_millis(500));
    let c = mbps_to_cps(150.0);
    let macr_pred = single_link_macr(c, 2, 5.0);
    let t =
        phantom_metrics::convergence_time(net.trunk_macr(&engine, TrunkIdx(0)), macr_pred, 0.15)
            .expect("MACR never converged");
    assert!(
        t < 0.150,
        "paper claims fast convergence; measured {:.1} ms",
        t * 1e3
    );
}

#[test]
fn queue_stays_moderate() {
    let (mut engine, net) = phantom_net(2, 3);
    engine.run_until(SimTime::from_millis(500));
    let port = net.trunk_port(&engine, TrunkIdx(0));
    assert_eq!(port.drops(), 0, "phantom should not overflow a 16k buffer");
    assert!(
        port.queue_high_water() < 2000,
        "transient queue too large: {} cells",
        port.queue_high_water()
    );
    // steady state: queue drains (equilibrium utilization < 1)
    let tail_q = net.trunk_queue(&engine, TrunkIdx(0)).mean_after(0.3);
    assert!(tail_q < 100.0, "standing queue: {tail_q} cells");
}

#[test]
fn utilization_matches_n_u_over_1_plus_n_u() {
    for (n, seed) in [(1usize, 10u64), (2, 11), (5, 12)] {
        let (mut engine, net) = phantom_net(n, seed);
        engine.run_until(SimTime::from_millis(600));
        let tp = net.trunk_throughput(&engine, TrunkIdx(0)).mean_after(0.4);
        let util = tp / mbps_to_cps(150.0);
        let pred = phantom_core::fixed_point::single_link_utilization(n, 5.0);
        assert!(
            (util - pred).abs() < 0.06,
            "n={n}: utilization {util:.3} vs predicted {pred:.3}"
        );
    }
}

#[test]
fn allocation_is_fair_across_ten_sessions() {
    let (mut engine, net) = phantom_net(10, 4);
    engine.run_until(SimTime::from_millis(800));
    let rates: Vec<f64> = (0..10)
        .map(|s| net.session_rate(&engine, SessionId(s)).mean_after(0.5))
        .collect();
    let jain = phantom_metrics::jain_index(&rates);
    assert!(jain > 0.99, "Jain index {jain:.4} for rates {rates:?}");
}

#[test]
fn late_joiner_squeezes_the_allocation_down() {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    b.session(&[s1, s2], Traffic::greedy());
    b.session(
        &[s1, s2],
        Traffic::window(SimTime::from_millis(300), SimTime::MAX),
    );
    let mut engine = Engine::new(5);
    let net = b.build(&mut engine, &mut || Box::new(PhantomAllocator::paper()));
    let c = mbps_to_cps(150.0);

    engine.run_until(SimTime::from_millis(290));
    let macr_alone = net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.2);
    let pred_alone = single_link_macr(c, 1, 5.0);
    assert!((macr_alone - pred_alone).abs() < 0.1 * pred_alone);

    engine.run_until(SimTime::from_millis(800));
    let macr_both = net.trunk_macr(&engine, TrunkIdx(0)).mean_after(0.6);
    let pred_both = single_link_macr(c, 2, 5.0);
    assert!(
        (macr_both - pred_both).abs() < 0.1 * pred_both,
        "after join: MACR {macr_both:.0} vs {pred_both:.0}"
    );
    // and the first session actually gave up bandwidth
    let s0_late = net.session_acr(&engine, SessionId(0)).mean_after(0.6);
    assert!(s0_late < 0.8 * 5.0 * macr_alone);
}

#[test]
fn ni_mode_also_controls_the_link_but_coarser() {
    let mut b = NetworkBuilder::new();
    let s1 = b.switch("s1");
    let s2 = b.switch("s2");
    b.trunk(s1, s2, 150.0, SimDuration::from_micros(10));
    for _ in 0..2 {
        b.session(&[s1, s2], Traffic::greedy());
    }
    let mut engine = Engine::new(6);
    let net = b.build(&mut engine, &mut || {
        Box::new(PhantomNi::new(PhantomConfig::paper(), 300))
    });
    engine.run_until(SimTime::from_millis(800));
    let port = net.trunk_port(&engine, TrunkIdx(0));
    // binary feedback must still keep the system out of overload collapse
    assert_eq!(port.drops(), 0, "NI mode dropped cells");
    let tp = net.trunk_throughput(&engine, TrunkIdx(0)).mean_after(0.5);
    let util = tp / mbps_to_cps(150.0);
    assert!(util > 0.5, "NI-mode utilization collapsed: {util:.2}");
    // rates stay bounded: the queue cannot be growing without bound
    let q_tail = net.trunk_queue(&engine, TrunkIdx(0)).mean_after(0.5);
    assert!(q_tail < 5000.0, "NI-mode queue runaway: {q_tail} cells");
    // fairness is preserved (both sessions get NI'd symmetrically)
    let r0 = net.session_rate(&engine, SessionId(0)).mean_after(0.5);
    let r1 = net.session_rate(&engine, SessionId(1)).mean_after(0.5);
    let jain = phantom_metrics::jain_index(&[r0, r1]);
    assert!(jain > 0.95, "NI-mode unfair: {r0} vs {r1}");
}
