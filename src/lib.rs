//! Umbrella crate re-exporting the Phantom reproduction workspace.
pub use phantom_analyze as analyze;
pub use phantom_atm as atm;
pub use phantom_baselines as baselines;
pub use phantom_core as core;
pub use phantom_metrics as metrics;
pub use phantom_scenarios as scenarios;
pub use phantom_scene as scene;
pub use phantom_serve as serve;
pub use phantom_sim as sim;
pub use phantom_tcp as tcp;
